//! Ligra's `vertexSubset`: the frontier of active vertices, in sparse
//! (vertex-id list) or dense (bit-vector) representation.
//!
//! Ligra switches representation by frontier density; the paper's active
//! lists (§V.B "Maintaining the active-list") are exactly these two
//! structures, and OMEGA gives the dense one a bit per scratchpad-resident
//! vertex.

use omega_graph::VertexId;

/// A set of active vertices over `0..n`.
///
/// # Example
///
/// ```
/// use omega_ligra::VertexSubset;
///
/// let mut frontier = VertexSubset::from_ids(100, vec![3, 1, 4, 1, 5]);
/// assert_eq!(frontier.len(), 4); // deduplicated
/// assert!(frontier.contains(4));
/// frontier.densify();
/// assert!(frontier.is_dense());
/// assert_eq!(frontier.to_ids(), vec![1, 3, 4, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexSubset {
    /// Sorted list of active vertex ids.
    Sparse {
        /// Total number of vertices in the graph.
        n: usize,
        /// Active ids, ascending.
        ids: Vec<VertexId>,
    },
    /// One flag per vertex.
    Dense {
        /// Membership flags.
        flags: Vec<bool>,
        /// Number of set flags.
        count: usize,
    },
}

impl VertexSubset {
    /// The empty subset (sparse).
    pub fn empty(n: usize) -> Self {
        VertexSubset::Sparse { n, ids: Vec::new() }
    }

    /// A single active vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!((v as usize) < n, "vertex {v} out of range {n}");
        VertexSubset::Sparse { n, ids: vec![v] }
    }

    /// All `n` vertices active (dense).
    pub fn all(n: usize) -> Self {
        VertexSubset::Dense {
            flags: vec![true; n],
            count: n,
        }
    }

    /// Builds a sparse subset from ids (sorted and deduplicated here).
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= n`.
    pub fn from_ids(n: usize, mut ids: Vec<VertexId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        if let Some(&max) = ids.last() {
            assert!((max as usize) < n, "vertex {max} out of range {n}");
        }
        VertexSubset::Sparse { n, ids }
    }

    /// Number of vertices in the universe.
    pub fn universe(&self) -> usize {
        match self {
            VertexSubset::Sparse { n, .. } => *n,
            VertexSubset::Dense { flags, .. } => flags.len(),
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.len(),
            VertexSubset::Dense { count, .. } => *count,
        }
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the representation is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, VertexSubset::Dense { .. })
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.binary_search(&v).is_ok(),
            VertexSubset::Dense { flags, .. } => flags[v as usize],
        }
    }

    /// Active ids in ascending order (allocates for dense subsets).
    pub fn to_ids(&self) -> Vec<VertexId> {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.clone(),
            VertexSubset::Dense { flags, .. } => flags
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f)
                .map(|(i, _)| i as VertexId)
                .collect(),
        }
    }

    /// Converts to dense in place.
    pub fn densify(&mut self) {
        if let VertexSubset::Sparse { n, ids } = self {
            let mut flags = vec![false; *n];
            for &v in ids.iter() {
                flags[v as usize] = true;
            }
            let count = ids.len();
            *self = VertexSubset::Dense { flags, count };
        }
    }

    /// Converts to sparse in place.
    pub fn sparsify(&mut self) {
        if self.is_dense() {
            let n = self.universe();
            let ids = self.to_ids();
            *self = VertexSubset::Sparse { n, ids };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let s = VertexSubset::empty(5);
        assert!(s.is_empty());
        let s = VertexSubset::single(5, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = VertexSubset::from_ids(10, vec![5, 1, 5, 3]);
        assert_eq!(s.to_ids(), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn densify_sparsify_roundtrip() {
        let mut s = VertexSubset::from_ids(8, vec![0, 7, 2]);
        s.densify();
        assert!(s.is_dense());
        assert_eq!(s.len(), 3);
        assert!(s.contains(7));
        s.sparsify();
        assert!(!s.is_dense());
        assert_eq!(s.to_ids(), vec![0, 2, 7]);
    }

    #[test]
    fn all_is_dense_and_full() {
        let s = VertexSubset::all(4);
        assert!(s.is_dense());
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_ids(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        VertexSubset::single(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ids_out_of_range_panics() {
        VertexSubset::from_ids(2, vec![0, 5]);
    }
}
