//! The execution context: property registry, work partitioning, and the
//! tracing hooks through which every vtxProp access flows.

use crate::props::{PropId, PropStorage, PropType};
use crate::trace::{PropSpec, RawPropId, TraceEvent, TraceMeta, Tracer};
use omega_sim::AtomicKind;
use std::marker::PhantomData;

/// Framework execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of logical cores work is partitioned over (16, Table III).
    pub n_cores: usize,
    /// OpenMP-style static chunk size: iteration `i` of a parallel loop is
    /// executed by core `(i / chunk_size) % n_cores`. OMEGA's scratchpad
    /// mapping is configured to the same chunk size (§V.D); the chunk
    /// ablation deliberately mismatches them.
    pub chunk_size: usize,
    /// Ligra's direction-optimisation threshold: use the dense (pull)
    /// representation when `frontier_size + frontier_out_edges > m / div`.
    pub dense_threshold_div: u64,
    /// Non-memory work per processed edge, in cycles ×100.
    pub compute_per_edge_x100: u32,
    /// Non-memory work per processed vertex, in cycles ×100.
    pub compute_per_vertex_x100: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            n_cores: 16,
            chunk_size: 4,
            dense_threshold_div: 20,
            compute_per_edge_x100: 150,
            compute_per_vertex_x100: 200,
        }
    }
}

impl ExecConfig {
    /// The core executing iteration `i` of a statically-chunked parallel
    /// loop.
    pub fn core_of(&self, i: usize) -> usize {
        (i / self.chunk_size.max(1)) % self.n_cores
    }
}

/// Execution context: owns the property arrays and the tracer.
///
/// Algorithms allocate vtxProp arrays with [`Ctx::new_prop`] and access
/// them through the typed, traced accessors. The context is reusable
/// across algorithm runs only if the caller wants the traces concatenated;
/// typically one context is created per run.
pub struct Ctx<'t> {
    cfg: ExecConfig,
    props: Vec<PropStorage>,
    monitored: Vec<bool>,
    tracer: &'t mut dyn Tracer,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("cfg", &self.cfg)
            .field("props", &self.props.len())
            .finish()
    }
}

impl<'t> Ctx<'t> {
    /// Creates a context that reports events to `tracer`.
    pub fn new(cfg: ExecConfig, tracer: &'t mut dyn Tracer) -> Self {
        Ctx {
            cfg,
            props: Vec::new(),
            monitored: Vec::new(),
            tracer,
        }
    }

    /// The execution configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Allocates a vtxProp array of `len` entries initialised to `init`.
    /// The array is *monitored*: it counts toward Table II's vtxProp
    /// footprint and is eligible for scratchpad residency.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` arrays are allocated.
    pub fn new_prop<T: PropType>(&mut self, len: usize, init: T) -> PropId<T> {
        self.alloc_prop(len, init, true)
    }

    /// Allocates an *auxiliary* per-vertex array: framework bookkeeping
    /// that Table II does not count as vtxProp (e.g. PageRank's
    /// previous-iteration ranks, BC's visited flags). Auxiliary arrays
    /// always live in the regular cache hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` arrays are allocated.
    pub fn new_aux_prop<T: PropType>(&mut self, len: usize, init: T) -> PropId<T> {
        self.alloc_prop(len, init, false)
    }

    fn alloc_prop<T: PropType>(&mut self, len: usize, init: T, monitored: bool) -> PropId<T> {
        let raw = u16::try_from(self.props.len()).expect("too many property arrays");
        self.props.push(T::alloc(len, init));
        self.monitored.push(monitored);
        PropId {
            raw,
            _ty: PhantomData,
        }
    }

    /// Untraced read (initialisation, result extraction).
    pub fn peek<T: PropType>(&self, id: PropId<T>, v: u32) -> T {
        T::load(&self.props[id.raw as usize], v as usize)
    }

    /// Untraced write (initialisation).
    pub fn poke<T: PropType>(&mut self, id: PropId<T>, v: u32, val: T) {
        T::store(&mut self.props[id.raw as usize], v as usize, val);
    }

    /// Traced random read of vertex `v`'s property, performed by `core`.
    pub fn read<T: PropType>(&mut self, core: usize, id: PropId<T>, v: u32) -> T {
        self.tracer
            .emit(core, TraceEvent::PropRead { id: id.raw, v });
        T::load(&self.props[id.raw as usize], v as usize)
    }

    /// Traced read of a *source* vertex's property during an edge scan —
    /// eligible for OMEGA's source-vertex buffer (§V.C).
    pub fn read_src<T: PropType>(&mut self, core: usize, id: PropId<T>, v: u32) -> T {
        self.tracer
            .emit(core, TraceEvent::PropReadSrc { id: id.raw, v });
        T::load(&self.props[id.raw as usize], v as usize)
    }

    /// Traced write of vertex `v`'s property.
    pub fn write<T: PropType>(&mut self, core: usize, id: PropId<T>, v: u32, val: T) {
        self.tracer
            .emit(core, TraceEvent::PropWrite { id: id.raw, v });
        T::store(&mut self.props[id.raw as usize], v as usize, val);
    }

    /// Traced atomic read-modify-write: applies `f` to the current value
    /// and stores the result; returns `(old, new)`. `kind` names the ALU
    /// operation for the PISC microcode (Table II).
    pub fn atomic<T: PropType>(
        &mut self,
        core: usize,
        id: PropId<T>,
        v: u32,
        kind: AtomicKind,
        f: impl FnOnce(T) -> T,
    ) -> (T, T) {
        self.tracer.emit(
            core,
            TraceEvent::PropAtomic {
                id: id.raw,
                v,
                kind,
            },
        );
        let storage = &mut self.props[id.raw as usize];
        let old = T::load(storage, v as usize);
        let new = f(old);
        T::store(storage, v as usize, new);
        (old, new)
    }

    /// Emits an edge-array read event (the framework calls this while
    /// scanning adjacency).
    pub fn trace_edge(&mut self, core: usize, arc: u64) {
        self.tracer.emit(core, TraceEvent::EdgeRead { arc });
    }

    /// Emits a frontier read event.
    pub fn trace_frontier_read(&mut self, core: usize, index: u64, dense: bool) {
        self.tracer
            .emit(core, TraceEvent::FrontierRead { index, dense });
    }

    /// Emits a frontier insertion event.
    pub fn trace_frontier_write(&mut self, core: usize, vertex: u32, dense: bool, fused: bool) {
        self.tracer.emit(
            core,
            TraceEvent::FrontierWrite {
                vertex,
                dense,
                fused,
            },
        );
    }

    /// Emits a non-graph bookkeeping access.
    pub fn trace_ngraph(&mut self, core: usize) {
        self.tracer.emit(core, TraceEvent::NGraph);
    }

    /// Emits non-memory work of `x100 / 100` cycles.
    pub fn trace_compute(&mut self, core: usize, x100: u32) {
        self.tracer.emit(core, TraceEvent::Compute(x100));
    }

    /// Emits a global barrier (end of a Ligra iteration).
    pub fn barrier(&mut self) {
        self.tracer.emit_barrier();
    }

    /// Metadata describing the registered property arrays, for address
    /// layout in `omega-core`.
    pub fn prop_specs(&self) -> Vec<PropSpec> {
        self.props
            .iter()
            .zip(&self.monitored)
            .map(|(p, &monitored)| PropSpec {
                entry_bytes: p.entry_bytes(),
                len: p.len() as u64,
                monitored,
            })
            .collect()
    }

    /// Builds the full [`TraceMeta`] for a run over a graph with the given
    /// shape.
    pub fn meta_for(&self, n_vertices: u64, n_arcs: u64, weighted: bool) -> TraceMeta {
        TraceMeta {
            props: self.prop_specs(),
            n_vertices,
            n_arcs,
            weighted,
        }
    }

    /// Extracts a whole property array as a `Vec` (untraced; result
    /// extraction).
    pub fn extract<T: PropType>(&self, id: PropId<T>) -> Vec<T> {
        let storage = &self.props[id.raw as usize];
        (0..storage.len()).map(|i| T::load(storage, i)).collect()
    }

    /// Raw id of a typed property handle (for analyses keyed on
    /// [`RawPropId`]).
    pub fn raw_id<T: PropType>(&self, id: PropId<T>) -> RawPropId {
        id.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectingTracer, NullTracer};

    #[test]
    fn chunked_core_assignment() {
        let cfg = ExecConfig {
            n_cores: 4,
            chunk_size: 2,
            ..Default::default()
        };
        let cores: Vec<usize> = (0..10).map(|i| cfg.core_of(i)).collect();
        assert_eq!(cores, vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0]);
    }

    #[test]
    fn traced_accesses_emit_events() {
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(
            ExecConfig {
                n_cores: 2,
                ..Default::default()
            },
            &mut t,
        );
        let p = ctx.new_prop::<f64>(4, 1.0);
        assert_eq!(ctx.read(0, p, 2), 1.0);
        ctx.write(1, p, 2, 3.0);
        let (old, new) = ctx.atomic(0, p, 2, AtomicKind::FpAdd, |x| x + 1.0);
        assert_eq!((old, new), (3.0, 4.0));
        let raw = t.finish();
        assert_eq!(raw.core_len(0), 2);
        assert_eq!(raw.core_len(1), 1);
    }

    #[test]
    fn peek_and_poke_do_not_trace() {
        let mut t = CollectingTracer::new(1);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let p = ctx.new_prop::<u32>(2, 7);
        ctx.poke(p, 0, 9);
        assert_eq!(ctx.peek(p, 0), 9);
        assert_eq!(t.finish().events(), 0);
    }

    #[test]
    fn prop_specs_reflect_allocations() {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        ctx.new_prop::<f64>(10, 0.0);
        ctx.new_prop::<bool>(10, false);
        let specs = ctx.prop_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].entry_bytes, 8);
        assert_eq!(specs[1].entry_bytes, 1);
        assert_eq!(specs[1].len, 10);
    }

    #[test]
    fn extract_returns_full_array() {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let p = ctx.new_prop::<u32>(3, 5);
        ctx.poke(p, 1, 8);
        assert_eq!(ctx.extract(p), vec![5, 8, 5]);
    }
}
