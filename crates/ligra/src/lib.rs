//! # omega-ligra
//!
//! A Ligra-style vertex-centric graph-processing framework (Shun &
//! Blelloch, PPoPP'13) with built-in **memory-access tracing** — the
//! workload side of the OMEGA reproduction (Addisie et al., IISWC 2018).
//!
//! The paper runs Ligra unmodified on both the baseline CMP and OMEGA; this
//! crate plays that role. It provides:
//!
//! * [`subset::VertexSubset`] — Ligra's frontier abstraction
//!   with sparse and dense representations and automatic switching.
//! * [`edge_map`](edge_map::edge_map) / [`vertex_map`](edge_map::vertex_map)
//!   — the two Ligra primitives, in push (scatter, atomic) and pull
//!   (gather) directions with Ligra's density-based direction selection.
//! * [`algorithms`] — the paper's eight workloads (Table II): PageRank,
//!   BFS, SSSP, BC, Radii, CC, TC, KC.
//! * [`graphmat`] — a GraphMat-style, atomic-free execution mode (§V.F
//!   applied the paper's translation tool to GraphMat as well).
//! * [`native`] — real multithreaded host execution of the key algorithms
//!   (atomic CAS/fetch-min), validating the partitioned semantics under
//!   genuine concurrency and making the library useful outside simulation.
//! * [`trace`] — the instrumentation layer: every access to `vtxProp`,
//!   `edgeList`, the active lists, and non-graph bookkeeping data is
//!   emitted as a typed [`TraceEvent`](trace::TraceEvent) attributed to one
//!   of the simulated cores (work is partitioned with OpenMP-style static
//!   chunking, §V.D). `omega-core` lowers these events onto concrete
//!   addresses and replays them in the timing simulator.
//!
//! Algorithms are *functionally correct* — they compute real results,
//! verified against reference implementations in the test suite — while
//! simultaneously producing the trace.
//!
//! # Example
//!
//! ```
//! use omega_graph::generators;
//! use omega_ligra::{algorithms, Ctx, ExecConfig, trace::CollectingTracer};
//!
//! let g = generators::rmat(8, 8, generators::RmatParams::default(), 1)?;
//! let mut tracer = CollectingTracer::new(16);
//! let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
//! let ranks = algorithms::pagerank(&g, &mut ctx, 2);
//! assert_eq!(ranks.len(), g.num_vertices());
//! let raw = tracer.finish();
//! assert!(raw.events() > 0);
//! # Ok::<(), omega_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod ctx;
pub mod edge_map;
pub mod graphmat;
pub mod native;
pub mod props;
pub mod subset;
pub mod trace;

pub use ctx::{Ctx, ExecConfig};
pub use props::{PropId, PropType};
pub use subset::VertexSubset;
