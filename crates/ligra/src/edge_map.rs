//! Ligra's two primitives: `edge_map` and `vertex_map`, instrumented.
//!
//! `edge_map` applies an update function over the edges leaving the current
//! frontier, producing the next frontier. Two directions are implemented,
//! as in Ligra:
//!
//! * **Push** (scatter, sparse frontier): every frontier vertex walks its
//!   out-edges and updates destination properties — with *atomic*
//!   operations, since destinations are shared. These atomics are what
//!   OMEGA offloads to PISCs.
//! * **Pull** (gather, dense frontier): every destination walks its
//!   in-edges and accumulates from frontier sources — no atomics, but a
//!   frontier-membership read per edge.
//!
//! `Direction::Auto` applies Ligra's density heuristic: pull when
//! `|frontier| + out-edges(frontier) > m / dense_threshold_div`.
//!
//! Work is partitioned over cores with OpenMP-style static chunking
//! (`ExecConfig::core_of`), matching §V.D of the paper.

use crate::ctx::Ctx;
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId, Weight};

/// What an update did to the destination vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Destination not activated.
    None,
    /// Destination activated by a plain (non-atomic) update.
    Activated,
    /// Destination activated by the same atomic that updated its property —
    /// OMEGA's PISC sets the scratchpad active-list bit as part of the
    /// offloaded operation, so this activation costs the core nothing
    /// (§V.B "Maintaining the active-list").
    ActivatedFused,
}

/// Traversal direction for [`edge_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Ligra's density heuristic.
    Auto,
    /// Scatter along out-edges (atomic updates).
    Push,
    /// Gather along in-edges (plain updates).
    Pull,
}

/// The per-edge update function.
///
/// Arguments: context, executing core, source, destination, weight, and
/// whether the traversal is in pull direction (pull updates are
/// single-writer and may use plain stores where push needs atomics).
pub type UpdateFn<'a> =
    dyn FnMut(&mut Ctx<'_>, usize, VertexId, VertexId, Weight, bool) -> Activation + 'a;

/// Optional destination filter for pull traversals (Ligra's `cond`):
/// destinations for which it returns `false` are skipped entirely.
pub type CondFn<'a> = dyn FnMut(&mut Ctx<'_>, usize, VertexId) -> bool + 'a;

/// Applies `update` over the edges leaving `frontier`; returns the next
/// frontier.
///
/// The output is sparse after a push and dense after a pull, as in Ligra.
///
/// # Panics
///
/// Panics if `frontier.universe() != g.num_vertices()`.
pub fn edge_map(
    g: &CsrGraph,
    ctx: &mut Ctx<'_>,
    frontier: &VertexSubset,
    direction: Direction,
    update: &mut UpdateFn<'_>,
    cond: Option<&mut CondFn<'_>>,
) -> VertexSubset {
    assert_eq!(
        frontier.universe(),
        g.num_vertices(),
        "frontier universe mismatch"
    );
    let dir = match direction {
        Direction::Auto => {
            let ids = frontier.to_ids();
            let out_edges: u64 = ids.iter().map(|&u| g.out_degree(u) as u64).sum();
            let threshold = g.num_arcs() / ctx.config().dense_threshold_div.max(1);
            if frontier.len() as u64 + out_edges > threshold {
                Direction::Pull
            } else {
                Direction::Push
            }
        }
        d => d,
    };
    match dir {
        Direction::Push => edge_map_push(g, ctx, frontier, update),
        Direction::Pull => edge_map_pull(g, ctx, frontier, update, cond),
        Direction::Auto => unreachable!("resolved above"),
    }
}

fn edge_map_push(
    g: &CsrGraph,
    ctx: &mut Ctx<'_>,
    frontier: &VertexSubset,
    update: &mut UpdateFn<'_>,
) -> VertexSubset {
    let n = g.num_vertices();
    let ids = frontier.to_ids();
    let per_vertex = ctx.config().compute_per_vertex_x100;
    let per_edge = ctx.config().compute_per_edge_x100;
    let mut out: Vec<VertexId> = Vec::new();
    for (pos, &u) in ids.iter().enumerate() {
        let core = ctx.config().core_of(pos);
        ctx.trace_frontier_read(core, pos as u64, false);
        ctx.trace_ngraph(core);
        ctx.trace_compute(core, per_vertex);
        let first_arc = g.out_offset(u);
        for (k, (v, w)) in g.out_neighbors_weighted(u).enumerate() {
            ctx.trace_edge(core, first_arc + k as u64);
            ctx.trace_compute(core, per_edge);
            match update(ctx, core, u, v, w, false) {
                Activation::None => {}
                act => {
                    out.push(v);
                    ctx.trace_frontier_write(core, v, false, act == Activation::ActivatedFused);
                }
            }
        }
    }
    VertexSubset::from_ids(n, out)
}

fn edge_map_pull(
    g: &CsrGraph,
    ctx: &mut Ctx<'_>,
    frontier: &VertexSubset,
    update: &mut UpdateFn<'_>,
    mut cond: Option<&mut CondFn<'_>>,
) -> VertexSubset {
    let n = g.num_vertices();
    let mut dense_frontier = frontier.clone();
    dense_frontier.densify();
    let per_vertex = ctx.config().compute_per_vertex_x100;
    let per_edge = ctx.config().compute_per_edge_x100;
    let mut flags = vec![false; n];
    let mut count = 0usize;
    for v in 0..n as VertexId {
        let core = ctx.config().core_of(v as usize);
        ctx.trace_compute(core, per_vertex);
        if let Some(c) = cond.as_deref_mut() {
            if !c(ctx, core, v) {
                continue;
            }
        }
        let first_arc = g.in_offset(v);
        for (k, (u, w)) in g.in_neighbors_weighted(v).enumerate() {
            ctx.trace_edge(core, first_arc + k as u64);
            ctx.trace_compute(core, per_edge);
            // Frontier membership test: one read into the dense bit-vector
            // word holding `u`.
            ctx.trace_frontier_read(core, u as u64 / 64, true);
            if !dense_frontier.contains(u) {
                continue;
            }
            match update(ctx, core, u, v, w, true) {
                Activation::None => {}
                act => {
                    if !flags[v as usize] {
                        flags[v as usize] = true;
                        count += 1;
                        ctx.trace_frontier_write(core, v, true, act == Activation::ActivatedFused);
                    }
                }
            }
        }
    }
    VertexSubset::Dense { flags, count }
}

/// Applies `f` to every vertex in `subset`, with chunked core assignment
/// and per-vertex bookkeeping traced.
pub fn vertex_map(
    ctx: &mut Ctx<'_>,
    subset: &VertexSubset,
    mut f: impl FnMut(&mut Ctx<'_>, usize, VertexId),
) {
    let per_vertex = ctx.config().compute_per_vertex_x100;
    match subset {
        VertexSubset::Sparse { ids, .. } => {
            for (pos, &v) in ids.iter().enumerate() {
                let core = ctx.config().core_of(pos);
                ctx.trace_frontier_read(core, pos as u64, false);
                ctx.trace_compute(core, per_vertex);
                f(ctx, core, v);
            }
        }
        VertexSubset::Dense { flags, .. } => {
            for (v, &on) in flags.iter().enumerate() {
                let core = ctx.config().core_of(v);
                if v % 64 == 0 {
                    ctx.trace_frontier_read(core, v as u64 / 64, true);
                }
                if on {
                    ctx.trace_compute(core, per_vertex);
                    f(ctx, core, v as VertexId);
                }
            }
        }
    }
}

/// Applies `f` to every vertex `0..n` (Ligra's whole-array `vertexMap`,
/// used for initialisation and per-iteration normalisation sweeps).
pub fn vertex_map_all(
    ctx: &mut Ctx<'_>,
    n: usize,
    mut f: impl FnMut(&mut Ctx<'_>, usize, VertexId),
) {
    let per_vertex = ctx.config().compute_per_vertex_x100;
    for v in 0..n {
        let core = ctx.config().core_of(v);
        ctx.trace_compute(core, per_vertex);
        f(ctx, core, v as VertexId);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecConfig;
    use crate::trace::{CollectingTracer, TraceEvent};
    use omega_graph::GraphBuilder;
    use omega_sim::AtomicKind;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::directed(4);
        b.extend_edges([(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        b.build()
    }

    fn cfg() -> ExecConfig {
        ExecConfig {
            n_cores: 2,
            chunk_size: 1,
            ..Default::default()
        }
    }

    #[test]
    fn push_visits_out_edges_and_builds_frontier() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let frontier = VertexSubset::single(4, 0);
        let next = edge_map(
            &g,
            &mut ctx,
            &frontier,
            Direction::Push,
            &mut |_, _, _, _, _, _| Activation::Activated,
            None,
        );
        assert_eq!(next.to_ids(), vec![1, 2]);
        let raw = t.finish();
        let edges = raw.classify().edge_reads;
        assert_eq!(edges, 2);
    }

    #[test]
    fn pull_scans_in_edges_of_all_vertices() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let frontier = VertexSubset::from_ids(4, vec![1, 2]);
        let next = edge_map(
            &g,
            &mut ctx,
            &frontier,
            Direction::Pull,
            &mut |_, _, _, _, _, pull| {
                assert!(pull);
                Activation::Activated
            },
            None,
        );
        // Only vertex 3 has frontier in-neighbors.
        assert!(next.is_dense());
        assert_eq!(next.to_ids(), vec![3]);
        // Pull scans every in-edge: 4 arcs total.
        assert_eq!(t.finish().classify().edge_reads, 4);
    }

    #[test]
    fn pull_cond_skips_destinations() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let frontier = VertexSubset::all(4);
        let next = edge_map(
            &g,
            &mut ctx,
            &frontier,
            Direction::Pull,
            &mut |_, _, _, _, _, _| Activation::Activated,
            Some(&mut |_, _, v| v != 3),
        );
        assert!(!next.contains(3));
    }

    #[test]
    fn auto_picks_pull_for_large_frontiers() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        // Threshold m/1 = 4: frontier of all 4 vertices + 4 out-edges > 4 → pull.
        let mut ctx = Ctx::new(
            ExecConfig {
                dense_threshold_div: 1,
                ..cfg()
            },
            &mut t,
        );
        let mut saw_pull = false;
        edge_map(
            &g,
            &mut ctx,
            &VertexSubset::all(4),
            Direction::Auto,
            &mut |_, _, _, _, _, pull| {
                saw_pull = pull;
                Activation::None
            },
            None,
        );
        assert!(saw_pull);
    }

    #[test]
    fn auto_picks_push_for_small_frontiers() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(
            ExecConfig {
                dense_threshold_div: 1,
                ..cfg()
            },
            &mut t,
        );
        let mut saw_push = false;
        edge_map(
            &g,
            &mut ctx,
            &VertexSubset::single(4, 0),
            Direction::Auto,
            &mut |_, _, _, _, _, pull| {
                saw_push = !pull;
                Activation::None
            },
            None,
        );
        assert!(saw_push);
    }

    #[test]
    fn fused_activation_is_marked_in_trace() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        edge_map(
            &g,
            &mut ctx,
            &VertexSubset::single(4, 0),
            Direction::Push,
            &mut |ctx, core, _u, v, _w, _| {
                let p = if v == 1 {
                    Activation::ActivatedFused
                } else {
                    Activation::Activated
                };
                ctx.trace_compute(core, 1);
                p
            },
            None,
        );
        let raw = t.finish();
        let fused: Vec<bool> = raw
            .iter_events()
            .filter_map(|e| match e {
                TraceEvent::FrontierWrite { fused, .. } => Some(fused),
                _ => None,
            })
            .collect();
        assert_eq!(fused, vec![true, false]);
    }

    #[test]
    fn vertex_map_sparse_touches_only_members() {
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let s = VertexSubset::from_ids(10, vec![2, 5]);
        let mut seen = Vec::new();
        vertex_map(&mut ctx, &s, |_, _, v| seen.push(v));
        assert_eq!(seen, vec![2, 5]);
    }

    #[test]
    fn vertex_map_dense_scans_flags() {
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let mut s = VertexSubset::from_ids(10, vec![2, 5]);
        s.densify();
        let mut seen = Vec::new();
        vertex_map(&mut ctx, &s, |_, _, v| seen.push(v));
        assert_eq!(seen, vec![2, 5]);
    }

    #[test]
    fn vertex_map_all_covers_everything() {
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let mut count = 0;
        vertex_map_all(&mut ctx, 7, |_, _, _| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn push_updates_can_be_atomic_and_traced() {
        let g = diamond();
        let mut t = CollectingTracer::new(2);
        let mut ctx = Ctx::new(cfg(), &mut t);
        let rank = ctx.new_prop::<f64>(4, 0.0);
        edge_map(
            &g,
            &mut ctx,
            &VertexSubset::single(4, 0),
            Direction::Push,
            &mut |ctx, core, _u, v, _w, _| {
                ctx.atomic(core, rank, v, AtomicKind::FpAdd, |x| x + 1.0);
                Activation::ActivatedFused
            },
            None,
        );
        assert_eq!(ctx.peek(rank, 1), 1.0);
        assert_eq!(ctx.peek(rank, 2), 1.0);
        assert_eq!(t.finish().classify().prop_atomics, 2);
    }
}
