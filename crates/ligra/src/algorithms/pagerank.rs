//! PageRank (Fig. 2 of the paper): push-style scatter with atomic
//! floating-point accumulation into the destination's `next_pagerank` —
//! the paper's flagship workload (all vertices active each iteration, the
//! highest atomic and random-access rates of Table II).

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, vertex_map_all, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Damping factor used by the paper's reference implementation.
pub const DAMPING: f64 = 0.85;

/// Runs `iters` PageRank iterations; returns the final scores.
///
/// Scores are initialised to `1/n` and updated as
/// `rank' = (1-d)/n + d · Σ rank(u)/out_degree(u)` over in-neighbors. The
/// scatter reads the source's current rank per edge (a source-vertex-buffer
/// access class) and atomically adds into the destination (the PISC-offload
/// class).
pub fn pagerank(g: &CsrGraph, ctx: &mut Ctx<'_>, iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Table II: PageRank has one true vtxProp (the atomically-updated
    // next_pagerank, 8 B). The previous-iteration ranks are auxiliary:
    // they are read per source during the scatter (sequential-ish) and
    // stay in the regular caches.
    let curr = ctx.new_aux_prop::<f64>(n, 1.0 / n as f64);
    let next = ctx.new_prop::<f64>(n, 0.0);
    // Per-vertex scatter weight: rank/out_degree, recomputed each iteration.
    let all = VertexSubset::all(n);
    for _ in 0..iters {
        edge_map(
            g,
            ctx,
            &all,
            Direction::Push,
            &mut |ctx, core, u, v, _w, _pull| {
                let ru = ctx.read_src(core, curr, u);
                let contrib = ru / g.out_degree(u).max(1) as f64;
                ctx.atomic(core, next, v, AtomicKind::FpAdd, |x| x + contrib);
                Activation::None
            },
            None,
        );
        ctx.barrier();
        // Normalise and swap: curr ← (1-d)/n + d·next; next ← 0.
        vertex_map_all(ctx, n, |ctx, core, v| {
            let acc = ctx.read(core, next, v);
            ctx.write(core, curr, v, (1.0 - DAMPING) / n as f64 + DAMPING * acc);
            ctx.write(core, next, v, 0.0);
        });
        ctx.barrier();
    }
    ctx.extract(curr)
}

/// Pull-direction PageRank: each destination gathers contributions along
/// its in-edges with plain (non-atomic) updates — Ligra's dense-iteration
/// form, and the framework path that exercises the dense frontier and
/// fused dense activations end to end. Numerically identical to
/// [`pagerank`].
pub fn pagerank_pull(g: &CsrGraph, ctx: &mut Ctx<'_>, iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let curr = ctx.new_aux_prop::<f64>(n, 1.0 / n as f64);
    let next = ctx.new_prop::<f64>(n, 0.0);
    let all = VertexSubset::all(n);
    for _ in 0..iters {
        edge_map(
            g,
            ctx,
            &all,
            Direction::Pull,
            &mut |ctx, core, u, v, _w, pull| {
                debug_assert!(pull);
                let ru = ctx.read_src(core, curr, u);
                let contrib = ru / g.out_degree(u).max(1) as f64;
                let acc = ctx.read(core, next, v);
                ctx.write(core, next, v, acc + contrib);
                // Dense-mode activation, fused with the update: OMEGA's
                // PISC absorbs the active-list bit (§V.B).
                Activation::ActivatedFused
            },
            None,
        );
        ctx.barrier();
        vertex_map_all(ctx, n, |ctx, core, v| {
            let acc = ctx.read(core, next, v);
            ctx.write(core, curr, v, (1.0 - DAMPING) / n as f64 + DAMPING * acc);
            ctx.write(core, next, v, 0.0);
        });
        ctx.barrier();
    }
    ctx.extract(curr)
}

/// Reference sequential PageRank for validation.
pub fn pagerank_reference(g: &CsrGraph, iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut curr = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for u in 0..n as VertexId {
            let contrib = curr[u as usize] / g.out_degree(u).max(1) as f64;
            for v in g.out_neighbors(u) {
                next[v as usize] += contrib;
            }
        }
        for v in 0..n {
            curr[v] = (1.0 - DAMPING) / n as f64 + DAMPING * next[v];
        }
    }
    curr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectingTracer, NullTracer};
    use crate::ExecConfig;
    use omega_graph::generators;

    #[test]
    fn matches_reference() {
        let g = generators::rmat(7, 6, generators::RmatParams::default(), 3).unwrap();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let ours = pagerank(&g, &mut ctx, 3);
        let reference = pagerank_reference(&g, 3);
        for (a, b) in ours.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn scores_sum_below_one_and_positive() {
        let g = generators::rmat(6, 6, generators::RmatParams::default(), 5).unwrap();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let ranks = pagerank(&g, &mut ctx, 5);
        let sum: f64 = ranks.iter().sum();
        assert!(sum > 0.0 && sum <= 1.0 + 1e-9, "sum = {sum}");
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn hub_outranks_leaf_in_star() {
        let g = generators::star(16).unwrap();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let ranks = pagerank(&g, &mut ctx, 10);
        assert!(ranks[0] > ranks[1] * 2.0);
    }

    #[test]
    fn emits_one_atomic_per_arc_per_iteration() {
        let g = generators::rmat(6, 4, generators::RmatParams::default(), 7).unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        pagerank(&g, &mut ctx, 2);
        let c = t.finish().classify();
        assert_eq!(c.prop_atomics, 2 * g.num_arcs());
        assert_eq!(c.edge_reads, 2 * g.num_arcs());
    }

    #[test]
    fn pull_variant_matches_push_exactly() {
        let g = generators::rmat(7, 6, generators::RmatParams::default(), 3).unwrap();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let push = pagerank(&g, &mut ctx, 3);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let pull = pagerank_pull(&g, &mut ctx, 3);
        for (a, b) in push.iter().zip(&pull) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn pull_variant_emits_no_atomics() {
        let g = generators::rmat(6, 4, generators::RmatParams::default(), 7).unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        pagerank_pull(&g, &mut ctx, 1);
        let c = t.finish().classify();
        assert_eq!(c.prop_atomics, 0);
        assert_eq!(c.edge_reads, g.num_arcs());
    }

    #[test]
    fn empty_graph_yields_empty_ranks() {
        let g = omega_graph::GraphBuilder::directed(0).build();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        assert!(pagerank(&g, &mut ctx, 1).is_empty());
    }
}
