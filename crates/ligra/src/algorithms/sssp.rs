//! Single-source shortest paths (Bellman-Ford over frontiers, as in Ligra
//! and the paper's Fig. 10 pseudo-code): reads the source's `ShortestLen`,
//! adds the edge length, atomically min-updates the destination, and sets
//! its `Visited` flag to join the next frontier.
//!
//! This is the paper's showcase for the source-vertex buffer (§V.C): the
//! source distance is re-read for every outgoing edge.

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, vertex_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Distance marker for unreached vertices.
pub const UNREACHED: i32 = i32::MAX;

/// SSSP from `root`; returns distances (`UNREACHED` where no path exists).
///
/// Edge weights come from the graph (unit weights if unweighted).
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn sssp(g: &CsrGraph, ctx: &mut Ctx<'_>, root: VertexId) -> Vec<i32> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range {n}");
    let dist = ctx.new_prop::<i32>(n, UNREACHED);
    let queued = ctx.new_prop::<bool>(n, false);
    ctx.poke(dist, root, 0);
    let mut frontier = VertexSubset::single(n, root);
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds <= n {
        rounds += 1;
        let next = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, u, v, w, _pull| {
                // Fig. 10: newShortestLen = ShortestLen[s] + edgeLen.
                let du = ctx.read_src(core, dist, u);
                let cand = du.saturating_add(w as i32);
                let (old, new) = ctx.atomic(core, dist, v, AtomicKind::SignedMin, |d| d.min(cand));
                if new < old {
                    // Visited[d] = 1 — one activation per round per vertex.
                    let (was, _) =
                        ctx.atomic(core, queued, v, AtomicKind::UnsignedCompareSet, |_| true);
                    if !was {
                        return Activation::ActivatedFused;
                    }
                }
                Activation::None
            },
            None,
        );
        ctx.barrier();
        // Reset the per-round visited flags for the next iteration.
        vertex_map(ctx, &next, |ctx, core, v| {
            ctx.write(core, queued, v, false);
        });
        ctx.barrier();
        frontier = next;
    }
    ctx.extract(dist)
}

/// Reference Dijkstra for validation.
pub fn sssp_reference(g: &CsrGraph, root: VertexId) -> Vec<i32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::from([(Reverse(0i64), root)]);
    while let Some((Reverse(d), u)) = heap.pop() {
        if d > dist[u as usize] as i64 {
            continue;
        }
        for (v, w) in g.out_neighbors_weighted(u) {
            let nd = d + w as i64;
            if nd < dist[v as usize] as i64 {
                dist[v as usize] = nd as i32;
                heap.push((Reverse(nd), v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectingTracer, NullTracer};
    use crate::ExecConfig;
    use omega_graph::generators;

    fn run(g: &CsrGraph, root: VertexId) -> Vec<i32> {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        sssp(g, &mut ctx, root)
    }

    #[test]
    fn matches_dijkstra_on_weighted_grid() {
        let g = generators::grid_road(8, 8, 0.2, 20, 11).unwrap();
        let ours = run(&g, 0);
        let reference = sssp_reference(&g, 0);
        assert_eq!(ours, reference);
    }

    #[test]
    fn matches_dijkstra_on_unweighted_rmat() {
        let g = generators::rmat(7, 6, generators::RmatParams::default(), 8).unwrap();
        let ours = run(&g, 0);
        let reference = sssp_reference(&g, 0);
        assert_eq!(ours, reference);
    }

    #[test]
    fn unreachable_stay_at_max() {
        let g = generators::path(4).unwrap();
        let d = run(&g, 2);
        assert_eq!(d, vec![UNREACHED, UNREACHED, 0, 1]);
    }

    #[test]
    fn reads_source_property_per_edge() {
        let g = generators::grid_road(5, 5, 0.0, 9, 2).unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        sssp(&g, &mut ctx, 0);
        let raw = t.finish();
        let src_reads = raw
            .iter_events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::PropReadSrc { .. }))
            .count();
        assert!(
            src_reads as u64 >= g.num_arcs() / 2,
            "SSSP re-reads source distances"
        );
    }
}
