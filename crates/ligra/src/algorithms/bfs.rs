//! Breadth-first search, Ligra-style: a sparse frontier, a cheap
//! parent-already-set check per edge, and a compare-and-set only on first
//! touch — the paper's example of an algorithm with *many random reads but
//! few atomics* (Table II: %atomic low, %random high).

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Marker for an unreached vertex in the parent array.
pub const NO_PARENT: u32 = u32::MAX;

/// BFS from `root`; returns the parent array (`NO_PARENT` = unreached;
/// the root is its own parent).
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs(g: &CsrGraph, ctx: &mut Ctx<'_>, root: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range {n}");
    let parent = ctx.new_prop::<u32>(n, NO_PARENT);
    ctx.poke(parent, root, root);
    let mut frontier = VertexSubset::single(n, root);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, u, v, _w, _pull| {
                // Ligra checks before the CAS to avoid wasted atomics.
                if ctx.read(core, parent, v) != NO_PARENT {
                    return Activation::None;
                }
                let (old, _) = ctx.atomic(core, parent, v, AtomicKind::UnsignedCompareSet, |p| {
                    if p == NO_PARENT {
                        u
                    } else {
                        p
                    }
                });
                if old == NO_PARENT {
                    Activation::ActivatedFused
                } else {
                    Activation::None
                }
            },
            None,
        );
        ctx.barrier();
    }
    ctx.extract(parent)
}

/// Direction-optimised BFS (Beamer's hybrid, which Ligra popularised):
/// sparse frontiers push with check-then-CAS; dense frontiers switch to a
/// *bottom-up* sweep in which every unvisited vertex scans its in-edges and
/// stops at the first frontier parent — the early exit that makes the
/// hybrid win on low-diameter natural graphs. Returns the same reachable
/// set as [`bfs`]; parent choice may differ (any BFS parent is valid).
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_auto(g: &CsrGraph, ctx: &mut Ctx<'_>, root: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range {n}");
    let parent = ctx.new_prop::<u32>(n, NO_PARENT);
    ctx.poke(parent, root, root);
    let mut frontier = VertexSubset::single(n, root);
    let threshold = g.num_arcs() / ctx.config().dense_threshold_div.max(1);
    let per_vertex = ctx.config().compute_per_vertex_x100;
    let per_edge = ctx.config().compute_per_edge_x100;
    while !frontier.is_empty() {
        let ids = frontier.to_ids();
        let out_edges: u64 = ids.iter().map(|&u| g.out_degree(u) as u64).sum();
        if frontier.len() as u64 + out_edges <= threshold {
            // Top-down (push) step, as in `bfs`.
            frontier = edge_map(
                g,
                ctx,
                &frontier,
                Direction::Push,
                &mut |ctx, core, u, v, _w, _pull| {
                    if ctx.read(core, parent, v) != NO_PARENT {
                        return Activation::None;
                    }
                    let (old, _) =
                        ctx.atomic(core, parent, v, AtomicKind::UnsignedCompareSet, |p| {
                            if p == NO_PARENT {
                                u
                            } else {
                                p
                            }
                        });
                    if old == NO_PARENT {
                        Activation::ActivatedFused
                    } else {
                        Activation::None
                    }
                },
                None,
            );
        } else {
            // Bottom-up step with early exit: every *unvisited* vertex scans
            // its in-edges for a frontier member.
            let mut dense = frontier.clone();
            dense.densify();
            let mut flags = vec![false; n];
            let mut count = 0usize;
            for v in 0..n as VertexId {
                let core = ctx.config().core_of(v as usize);
                ctx.trace_compute(core, per_vertex);
                if ctx.read(core, parent, v) != NO_PARENT {
                    continue;
                }
                let first_arc = g.in_offset(v);
                for (k, u) in g.in_neighbors(v).enumerate() {
                    ctx.trace_edge(core, first_arc + k as u64);
                    ctx.trace_compute(core, per_edge);
                    ctx.trace_frontier_read(core, u as u64 / 64, true);
                    if dense.contains(u) {
                        // Single-writer in bottom-up: a plain store suffices.
                        ctx.write(core, parent, v, u);
                        ctx.trace_frontier_write(core, v, true, false);
                        flags[v as usize] = true;
                        count += 1;
                        break; // early exit — the hybrid's whole point
                    }
                }
            }
            frontier = VertexSubset::Dense { flags, count };
        }
        ctx.barrier();
    }
    ctx.extract(parent)
}

/// Reference BFS depths for validation (`u32::MAX` = unreached).
pub fn bfs_depths_reference(g: &CsrGraph, root: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut depth = vec![u32::MAX; n];
    depth[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for v in g.out_neighbors(u) {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectingTracer, NullTracer};
    use crate::ExecConfig;
    use omega_graph::generators;

    fn run_bfs(g: &CsrGraph, root: VertexId) -> Vec<u32> {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        bfs(g, &mut ctx, root)
    }

    /// A parent array is valid iff the reachable set matches reference BFS
    /// and each parent edge exists and decreases depth by exactly one.
    fn assert_valid_parents(g: &CsrGraph, root: VertexId, parents: &[u32]) {
        let depths = bfs_depths_reference(g, root);
        for v in 0..g.num_vertices() {
            let p = parents[v];
            if v as u32 == root {
                assert_eq!(p, root);
                continue;
            }
            if depths[v] == u32::MAX {
                assert_eq!(p, NO_PARENT, "unreachable vertex {v} must have no parent");
            } else {
                assert_ne!(p, NO_PARENT, "reachable vertex {v} must have a parent");
                assert!(g.has_edge(p, v as u32), "parent edge {p}->{v} must exist");
                assert_eq!(
                    depths[v],
                    depths[p as usize] + 1,
                    "parent must be one level up"
                );
            }
        }
    }

    #[test]
    fn valid_on_power_law_graph() {
        let g = generators::rmat(7, 8, generators::RmatParams::default(), 2).unwrap();
        let root = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        let parents = run_bfs(&g, root);
        assert_valid_parents(&g, root, &parents);
    }

    #[test]
    fn valid_on_path() {
        let g = generators::path(10).unwrap();
        let parents = run_bfs(&g, 0);
        for (v, &p) in parents.iter().enumerate().skip(1) {
            assert_eq!(p, v as u32 - 1);
        }
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let g = generators::path(5).unwrap();
        let parents = run_bfs(&g, 3);
        assert_eq!(parents[0], NO_PARENT);
        assert_eq!(parents[4], 3);
    }

    #[test]
    fn atomics_at_most_one_per_discovered_vertex_class() {
        let g = generators::rmat(7, 8, generators::RmatParams::default(), 4).unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        bfs(&g, &mut ctx, 0);
        let c = t.finish().classify();
        // Sequential semantics: the pre-check filters all but first-touch,
        // so atomics == discovered vertices − 1 at most; far below reads.
        assert!(c.prop_atomics < c.prop_reads / 2, "{c:?}");
        assert!(c.prop_atomics <= g.num_vertices() as u64);
    }

    #[test]
    fn auto_bfs_reaches_the_same_set_with_valid_parents() {
        let g = generators::rmat(8, 10, generators::RmatParams::default(), 6).unwrap();
        let root = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        let parents = bfs_auto(&g, &mut ctx, root);
        assert_valid_parents(&g, root, &parents);
    }

    #[test]
    fn auto_bfs_switches_to_bottom_up_on_dense_frontiers() {
        // A hub-dominated graph makes the second frontier huge: the hybrid
        // must take the bottom-up branch, whose trace has *no* atomics.
        let g = generators::rmat(8, 10, generators::RmatParams::default(), 6).unwrap();
        let root = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        bfs_auto(&g, &mut ctx, root);
        let c = t.finish().classify();
        let mut t2 = CollectingTracer::new(16);
        let mut ctx2 = Ctx::new(ExecConfig::default(), &mut t2);
        bfs(&g, &mut ctx2, root);
        let c2 = t2.finish().classify();
        assert!(
            c.prop_atomics < c2.prop_atomics,
            "hybrid must replace CAS discoveries with bottom-up stores: {} vs {}",
            c.prop_atomics,
            c2.prop_atomics
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let g = generators::path(3).unwrap();
        run_bfs(&g, 9);
    }
}
