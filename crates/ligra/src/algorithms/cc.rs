//! Connected components by label propagation (Ligra's `Components`):
//! every vertex starts with its own id and repeatedly atomic-min-merges
//! labels across edges until a fixed point. Two vtxProp arrays (current
//! and previous ids), as in Table II.

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, vertex_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Connected components of an undirected graph; returns per-vertex labels,
/// where each component's label is its minimum vertex id.
///
/// # Panics
///
/// Panics if `g` is directed (label propagation over out-edges only finds
/// weakly-connected components incorrectly).
pub fn cc(g: &CsrGraph, ctx: &mut Ctx<'_>) -> Vec<u32> {
    assert!(!g.is_directed(), "cc requires an undirected graph");
    let n = g.num_vertices();
    let ids = ctx.new_prop::<u32>(n, 0);
    let prev = ctx.new_prop::<u32>(n, 0);
    for v in 0..n as VertexId {
        ctx.poke(ids, v, v);
        ctx.poke(prev, v, v);
    }
    let mut frontier = VertexSubset::all(n);
    while !frontier.is_empty() {
        let next = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, u, v, _w, _pull| {
                let lu = ctx.read_src(core, ids, u);
                let (old, new) = ctx.atomic(core, ids, v, AtomicKind::LabelMin, |l| l.min(lu));
                if new < old {
                    Activation::ActivatedFused
                } else {
                    Activation::None
                }
            },
            None,
        );
        ctx.barrier();
        // Ligra copies ids → prevIds each round (the second vtxProp).
        vertex_map(ctx, &next, |ctx, core, v| {
            let l = ctx.read(core, ids, v);
            ctx.write(core, prev, v, l);
        });
        ctx.barrier();
        frontier = next;
    }
    ctx.extract(ids)
}

/// Reference union-find components for validation.
pub fn cc_reference(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let next = parent[c as usize];
            parent[c as usize] = r;
            c = next;
        }
        r
    }
    for (u, v) in g.arcs() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullTracer;
    use crate::ExecConfig;
    use omega_graph::{generators, GraphBuilder};

    fn run(g: &CsrGraph) -> Vec<u32> {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        cc(g, &mut ctx)
    }

    #[test]
    fn two_islands() {
        let mut b = GraphBuilder::undirected(6);
        b.extend_edges([(0, 1), (1, 2), (3, 4)]).unwrap();
        let g = b.build();
        let labels = run(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn matches_union_find_on_rmat() {
        let g = generators::rmat_undirected(7, 4, generators::RmatParams::default(), 6).unwrap();
        assert_eq!(run(&g), cc_reference(&g));
    }

    #[test]
    fn matches_union_find_on_grid() {
        let g = generators::grid_road(7, 5, 0.1, 4, 2).unwrap();
        assert_eq!(run(&g), cc_reference(&g));
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = generators::path(3).unwrap();
        run(&g);
    }
}
