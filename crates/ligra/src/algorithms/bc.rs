//! Betweenness centrality — the forward ("first") pass only, as the paper
//! simulates (§X "we simulate only the first pass of BC"): a level-
//! synchronous sweep accumulating the number of shortest paths reaching
//! each vertex, with atomic floating-point adds and a visited check.

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, vertex_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Forward BC pass from `root`; returns per-vertex shortest-path counts
/// (σ values). Unreached vertices have count 0.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bc(g: &CsrGraph, ctx: &mut Ctx<'_>, root: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range {n}");
    // Table II: BC carries one 8-byte vtxProp (the path counts); the
    // visited/touched flags are framework bookkeeping kept in caches.
    let paths = ctx.new_prop::<f64>(n, 0.0);
    let visited = ctx.new_aux_prop::<bool>(n, false);
    let touched = ctx.new_aux_prop::<bool>(n, false);
    ctx.poke(paths, root, 1.0);
    ctx.poke(visited, root, true);
    let mut frontier = VertexSubset::single(n, root);
    while !frontier.is_empty() {
        let next = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, u, v, _w, _pull| {
                if ctx.read(core, visited, v) {
                    return Activation::None;
                }
                let su = ctx.read_src(core, paths, u);
                ctx.atomic(core, paths, v, AtomicKind::FpAdd, |x| x + su);
                let (was, _) =
                    ctx.atomic(core, touched, v, AtomicKind::UnsignedCompareSet, |_| true);
                if !was {
                    Activation::ActivatedFused
                } else {
                    Activation::None
                }
            },
            None,
        );
        ctx.barrier();
        // Close the level: mark the new frontier visited, clear round flags.
        vertex_map(ctx, &next, |ctx, core, v| {
            ctx.write(core, visited, v, true);
            ctx.write(core, touched, v, false);
        });
        ctx.barrier();
        frontier = next;
    }
    ctx.extract(paths)
}

/// Reference σ computation via BFS layering.
pub fn bc_reference(g: &CsrGraph, root: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut depth = vec![u32::MAX; n];
    let mut sigma = vec![0.0; n];
    depth[root as usize] = 0;
    sigma[root as usize] = 1.0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for v in g.out_neighbors(u) {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                queue.push_back(v);
            }
            if depth[v as usize] == depth[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullTracer;
    use crate::ExecConfig;
    use omega_graph::{generators, GraphBuilder};

    fn run(g: &CsrGraph, root: VertexId) -> Vec<f64> {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        bc(g, &mut ctx, root)
    }

    #[test]
    fn diamond_doubles_paths() {
        // 0 → {1,2} → 3: two shortest paths reach 3.
        let mut b = GraphBuilder::directed(4);
        b.extend_edges([(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let g = b.build();
        let sigma = run(&g, 0);
        assert_eq!(sigma, vec![1.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = generators::rmat(7, 6, generators::RmatParams::default(), 13).unwrap();
        let root = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.out_degree(v))
            .unwrap();
        let ours = run(&g, root);
        let reference = bc_reference(&g, root);
        for (i, (a, b)) in ours.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-9, "σ[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn unreached_vertices_have_zero_paths() {
        let g = generators::path(4).unwrap();
        let sigma = run(&g, 2);
        assert_eq!(sigma, vec![0.0, 0.0, 1.0, 1.0]);
    }
}
