//! Triangle counting on an undirected graph: for every edge `(u, v)` with
//! `u < v`, intersect the higher-id-filtered adjacency lists of `u` and
//! `v`. Edge-array reads dominate; vtxProp traffic is a single per-vertex
//! count write — the paper's example of a *compute-bound* workload whose
//! OMEGA speedup is limited (Table II: %atomic low, %random low).

use crate::ctx::Ctx;
use omega_graph::{CsrGraph, VertexId};

/// Counts triangles in an undirected graph; also records a per-vertex
/// triangle count in a vtxProp array (Table II: one 8-byte property).
///
/// # Panics
///
/// Panics if `g` is directed.
pub fn tc(g: &CsrGraph, ctx: &mut Ctx<'_>) -> u64 {
    assert!(!g.is_directed(), "tc requires an undirected graph");
    let n = g.num_vertices();
    let counts = ctx.new_prop::<u64>(n, 0);
    let per_edge = ctx.config().compute_per_edge_x100;
    let mut total = 0u64;
    for u in 0..n as VertexId {
        let core = ctx.config().core_of(u as usize);
        ctx.trace_ngraph(core);
        let mut c_u = 0u64;
        let u_first = g.out_offset(u);
        for (k, v) in g.out_neighbors(u).enumerate() {
            ctx.trace_edge(core, u_first + k as u64);
            if v <= u {
                continue;
            }
            // Merge-intersect {w ∈ N(u) : w > v} with {w ∈ N(v) : w > v}.
            let mut a = g
                .out_neighbors(u)
                .enumerate()
                .skip_while(|&(_, w)| w <= v)
                .peekable();
            let v_first = g.in_offset(v); // symmetric graph: in == out
            let mut b = g
                .out_neighbors(v)
                .enumerate()
                .skip_while(|&(_, w)| w <= v)
                .peekable();
            while let (Some(&(ai, aw)), Some(&(bi, bw))) = (a.peek(), b.peek()) {
                ctx.trace_compute(core, per_edge);
                match aw.cmp(&bw) {
                    std::cmp::Ordering::Less => {
                        ctx.trace_edge(core, u_first + ai as u64);
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        ctx.trace_edge(core, v_first + bi as u64);
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        ctx.trace_edge(core, u_first + ai as u64);
                        ctx.trace_edge(core, v_first + bi as u64);
                        c_u += 1;
                        a.next();
                        b.next();
                    }
                }
            }
        }
        if c_u > 0 {
            ctx.write(core, counts, u, c_u);
            total += c_u;
        }
    }
    ctx.barrier();
    total
}

/// Reference triangle count (brute force over vertex triples of an
/// adjacency set); for small graphs only.
pub fn tc_reference(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    let mut total = 0u64;
    for u in 0..n as VertexId {
        for v in g.out_neighbors(u) {
            if v <= u {
                continue;
            }
            for w in g.out_neighbors(v) {
                if w > v && g.has_edge(u, w) {
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectingTracer, NullTracer};
    use crate::ExecConfig;
    use omega_graph::generators;

    fn run(g: &CsrGraph) -> u64 {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        tc(g, &mut ctx)
    }

    #[test]
    fn complete_graph_has_choose_three() {
        let g = generators::complete(7).unwrap();
        assert_eq!(run(&g), 35); // C(7,3)
    }

    #[test]
    fn star_has_no_triangles() {
        let g = generators::star(20).unwrap();
        assert_eq!(run(&g), 0);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = generators::rmat_undirected(6, 6, generators::RmatParams::default(), 4).unwrap();
        assert_eq!(run(&g), tc_reference(&g));
    }

    #[test]
    fn trace_is_edge_dominated() {
        let g = generators::rmat_undirected(6, 6, generators::RmatParams::default(), 4).unwrap();
        let mut t = CollectingTracer::new(16);
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        tc(&g, &mut ctx);
        let c = t.finish().classify();
        assert!(
            c.edge_reads > 10 * (c.prop_reads + c.prop_writes + c.prop_atomics),
            "{c:?}"
        );
    }
}
