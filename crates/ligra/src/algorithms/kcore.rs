//! k-core decomposition by peeling: repeatedly remove vertices with
//! residual degree `< k`, atomically decrementing their neighbors'
//! degrees. The surviving subgraph is the k-core.

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Computes the k-core of an undirected graph; returns membership flags
/// (`true` = vertex is in the k-core).
///
/// # Panics
///
/// Panics if `g` is directed.
pub fn kcore(g: &CsrGraph, ctx: &mut Ctx<'_>, k: u32) -> Vec<bool> {
    assert!(!g.is_directed(), "kcore requires an undirected graph");
    let n = g.num_vertices();
    // Table II: KC's vtxProp is the 4-byte residual degree; the alive
    // flags are auxiliary.
    let degree = ctx.new_prop::<u32>(n, 0);
    let alive = ctx.new_aux_prop::<bool>(n, true);
    for v in 0..n as VertexId {
        ctx.poke(degree, v, g.out_degree(v));
    }
    // Initial peel set: everything already below k.
    let mut frontier = VertexSubset::from_ids(
        n,
        (0..n as VertexId)
            .filter(|&v| g.out_degree(v) < k)
            .collect(),
    );
    while !frontier.is_empty() {
        // Mark this wave dead, then propagate degree decrements.
        for &v in &frontier.to_ids() {
            let core = ctx.config().core_of(v as usize);
            ctx.write(core, alive, v, false);
        }
        ctx.barrier();
        frontier = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, _u, v, _w, _pull| {
                if !ctx.read(core, alive, v) {
                    return Activation::None;
                }
                let (_, new) = ctx.atomic(core, degree, v, AtomicKind::SignedAdd, |d| {
                    d.saturating_sub(1)
                });
                if new == k.saturating_sub(1) {
                    // Just dropped below the threshold: peel next round.
                    Activation::ActivatedFused
                } else {
                    Activation::None
                }
            },
            None,
        );
        ctx.barrier();
    }
    ctx.extract(alive)
}

/// Reference peeling implementation.
pub fn kcore_reference(g: &CsrGraph, k: u32) -> Vec<bool> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n as VertexId).map(|v| g.out_degree(v)).collect();
    let mut alive = vec![true; n];
    loop {
        let mut changed = false;
        for v in 0..n {
            if alive[v] && deg[v] < k {
                alive[v] = false;
                changed = true;
                for w in g.out_neighbors(v as VertexId) {
                    if alive[w as usize] {
                        deg[w as usize] = deg[w as usize].saturating_sub(1);
                    }
                }
            }
        }
        if !changed {
            return alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullTracer;
    use crate::ExecConfig;
    use omega_graph::{generators, GraphBuilder};

    fn run(g: &CsrGraph, k: u32) -> Vec<bool> {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        kcore(g, &mut ctx, k)
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: the 2-core is the triangle.
        let mut b = GraphBuilder::undirected(4);
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let g = b.build();
        assert_eq!(run(&g, 2), vec![true, true, true, false]);
    }

    #[test]
    fn star_has_no_two_core() {
        let g = generators::star(10).unwrap();
        assert!(run(&g, 2).iter().all(|&a| !a));
    }

    #[test]
    fn complete_graph_survives_high_k() {
        let g = generators::complete(6).unwrap();
        assert!(run(&g, 5).iter().all(|&a| a));
        assert!(run(&g, 6).iter().all(|&a| !a));
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = generators::rmat_undirected(7, 4, generators::RmatParams::default(), 12).unwrap();
        for k in [2, 3, 5] {
            assert_eq!(run(&g, k), kcore_reference(&g, k), "k={k}");
        }
    }

    #[test]
    fn k_zero_keeps_everything() {
        let g = generators::star(5).unwrap();
        assert!(run(&g, 0).iter().all(|&a| a));
    }
}
