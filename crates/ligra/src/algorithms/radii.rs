//! Graph radius estimation (Ligra's `Radii`): simultaneous BFS from a
//! sample of source vertices, each owning one bit of a per-vertex visited
//! bitmask; a vertex's radius estimate is the last round in which it
//! acquired a new bit. Uses three vtxProp arrays (visited, next-visited,
//! radii) — the largest per-vertex footprint in Table II — and atomic OR
//! plus radius updates per edge.

use crate::ctx::Ctx;
use crate::edge_map::{edge_map, vertex_map, Activation, Direction};
use crate::subset::VertexSubset;
use omega_graph::{CsrGraph, VertexId};
use omega_sim::AtomicKind;

/// Estimates the radius of `g` (largest per-vertex eccentricity seen from
/// the sample). The paper uses a sample size of 16.
///
/// Returns 0 for an empty or edgeless graph.
pub fn radii(g: &CsrGraph, ctx: &mut Ctx<'_>, sample: u32) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let k = (sample.clamp(1, 32) as usize).min(n);
    // Table II: Radii uses three vtxProp arrays totalling 12 B/vertex —
    // two 4-byte visitation bitmasks (so the sample is capped at 32
    // sources) and a 4-byte radius estimate.
    let visited = ctx.new_prop::<u32>(n, 0);
    let next_visited = ctx.new_prop::<u32>(n, 0);
    let radius = ctx.new_prop::<u32>(n, u32::MAX);
    // Sample the k highest-out-degree vertices: deterministic and
    // well-spread on hot-ordered graphs.
    let mut sources: Vec<VertexId> = (0..n as VertexId).collect();
    sources.sort_unstable_by(|&a, &b| g.out_degree(b).cmp(&g.out_degree(a)).then(a.cmp(&b)));
    sources.truncate(k);
    for (i, &s) in sources.iter().enumerate() {
        ctx.poke(visited, s, 1u32 << i);
        ctx.poke(next_visited, s, 1u32 << i);
        ctx.poke(radius, s, 0);
    }
    let mut frontier = VertexSubset::from_ids(n, sources);
    let mut round = 0u32;
    while !frontier.is_empty() {
        round += 1;
        let round_now = round;
        let next = edge_map(
            g,
            ctx,
            &frontier,
            Direction::Push,
            &mut |ctx, core, u, v, _w, _pull| {
                let mask_u = ctx.read_src(core, visited, u);
                let (old, new) =
                    ctx.atomic(core, next_visited, v, AtomicKind::BoolOr, |m| m | mask_u);
                if new != old {
                    // First improvement this round also bumps the radius.
                    let (old_r, _) = ctx.atomic(core, radius, v, AtomicKind::SignedMin, |r| {
                        if r == u32::MAX || r < round_now {
                            round_now
                        } else {
                            r
                        }
                    });
                    if old_r != round_now {
                        return Activation::ActivatedFused;
                    }
                }
                Activation::None
            },
            None,
        );
        ctx.barrier();
        // Fold next_visited into visited for the new frontier.
        vertex_map(ctx, &next, |ctx, core, v| {
            let m = ctx.read(core, next_visited, v);
            ctx.write(core, visited, v, m);
        });
        ctx.barrier();
        frontier = next;
    }
    // The estimate is the maximum finite per-vertex radius.
    (0..n as u32)
        .map(|v| ctx.peek(radius, v))
        .filter(|&r| r != u32::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullTracer;
    use crate::ExecConfig;
    use omega_graph::generators;

    fn run(g: &CsrGraph, sample: u32) -> u32 {
        let mut t = NullTracer;
        let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
        radii(g, &mut ctx, sample)
    }

    #[test]
    fn path_radius_is_its_length() {
        // Sampling includes vertex 0 (max out-degree ties broken by id);
        // the furthest vertex from the sampled set bounds the estimate.
        let g = generators::path(10).unwrap();
        let r = run(&g, 16);
        assert!(r >= 5, "estimate {r} too small for a 10-path");
        assert!(r <= 9);
    }

    #[test]
    fn star_radius_is_small() {
        let g = generators::star(64).unwrap();
        let r = run(&g, 16);
        assert!(r <= 2, "star eccentricities are ≤ 2, got {r}");
        assert!(r >= 1);
    }

    #[test]
    fn estimate_grows_with_sample_count() {
        let g = generators::grid_road(12, 12, 0.0, 1, 3).unwrap();
        let small = run(&g, 1);
        let large = run(&g, 32);
        assert!(large >= small, "more sources can only widen the estimate");
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = omega_graph::GraphBuilder::directed(0).build();
        assert_eq!(run(&g, 16), 0);
    }
}
