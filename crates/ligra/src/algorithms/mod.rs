//! The paper's eight graph workloads (§IV, Table II), implemented on the
//! framework primitives with full tracing.
//!
//! Every algorithm is functionally correct (validated against reference
//! implementations in the tests) and, run under a
//! [`CollectingTracer`](crate::trace::CollectingTracer), produces the
//! memory-access trace that the timing simulation replays.

mod bc;
mod bfs;
mod cc;
mod kcore;
mod pagerank;
mod radii;
mod sssp;
mod tc;

pub use bc::{bc, bc_reference};
pub use bfs::{bfs, bfs_auto, bfs_depths_reference, NO_PARENT};
pub use cc::{cc, cc_reference};
pub use kcore::{kcore, kcore_reference};
pub use pagerank::{pagerank, pagerank_pull, pagerank_reference, DAMPING};
pub use radii::radii;
pub use sssp::{sssp, sssp_reference, UNREACHED};
pub use tc::{tc, tc_reference};

use crate::ctx::Ctx;
use omega_graph::{CsrGraph, VertexId};

/// Qualitative levels used in Table II ("%atomic operation",
/// "%random access").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
        })
    }
}

/// Static characterisation of one algorithm — the paper's Table II row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSpec {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Atomic operation type(s) (Table II row 1).
    pub atomic_op: &'static str,
    /// Expected share of atomic operations.
    pub atomic_level: Level,
    /// Expected share of random accesses.
    pub random_level: Level,
    /// Bytes of vtxProp per vertex, summed over arrays (Table II
    /// "vtxProp entry size").
    pub vtx_prop_bytes: u32,
    /// Number of vtxProp arrays.
    pub n_vtx_props: u32,
    /// Whether the algorithm maintains an active list.
    pub active_list: bool,
    /// Whether the update reads the source vertex's vtxProp (the accesses
    /// the source-vertex buffer serves).
    pub reads_src_prop: bool,
    /// Whether the algorithm requires an undirected (symmetric) graph.
    pub needs_undirected: bool,
}

/// A runnable algorithm instance with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// PageRank with a fixed iteration count (the paper simulates one).
    PageRank {
        /// Number of iterations.
        iters: u32,
    },
    /// Breadth-first search from `root`.
    Bfs {
        /// Start vertex.
        root: VertexId,
    },
    /// Single-source shortest paths from `root`.
    Sssp {
        /// Start vertex.
        root: VertexId,
    },
    /// Betweenness centrality, first (forward) pass only, as the paper
    /// simulates.
    Bc {
        /// Start vertex.
        root: VertexId,
    },
    /// Graph radius estimation via multi-source BFS over a bit sample.
    Radii {
        /// Number of sample sources (the paper uses 16).
        sample: u32,
    },
    /// Connected components by label propagation (undirected).
    Cc,
    /// Triangle counting (undirected).
    Tc,
    /// k-core decomposition by peeling (undirected).
    KCore {
        /// The core parameter.
        k: u32,
    },
}

/// All eight algorithms with harness-default parameters; roots are filled
/// per-graph by [`Algo::with_default_root`].
pub const ALL_ALGOS: [Algo; 8] = [
    Algo::PageRank { iters: 1 },
    Algo::Bfs { root: 0 },
    Algo::Sssp { root: 0 },
    Algo::Bc { root: 0 },
    Algo::Radii { sample: 16 },
    Algo::Cc,
    Algo::Tc,
    Algo::KCore { k: 3 },
];

/// Result of running an [`Algo`] through the uniform dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoOutput {
    /// PageRank scores.
    Ranks(Vec<f64>),
    /// BFS parents (`u32::MAX` = unreached).
    Parents(Vec<u32>),
    /// SSSP distances (`i32::MAX` = unreached).
    Distances(Vec<i32>),
    /// BC shortest-path counts after the forward pass.
    Paths(Vec<f64>),
    /// Estimated radius.
    Radius(u32),
    /// Component labels.
    Labels(Vec<u32>),
    /// Triangle count.
    Triangles(u64),
    /// k-core membership flags.
    CoreFlags(Vec<bool>),
}

impl AlgoOutput {
    /// A deterministic scalar summary, for regression tests.
    pub fn checksum(&self) -> f64 {
        match self {
            AlgoOutput::Ranks(v) => v.iter().sum(),
            AlgoOutput::Parents(v) => v.iter().map(|&x| x as f64).sum(),
            AlgoOutput::Distances(v) => v
                .iter()
                .filter(|&&d| d != i32::MAX)
                .map(|&x| x as f64)
                .sum(),
            AlgoOutput::Paths(v) => v.iter().sum(),
            AlgoOutput::Radius(r) => *r as f64,
            AlgoOutput::Labels(v) => v.iter().map(|&x| x as f64).sum(),
            AlgoOutput::Triangles(t) => *t as f64,
            AlgoOutput::CoreFlags(v) => v.iter().filter(|&&b| b).count() as f64,
        }
    }
}

impl Algo {
    /// Short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::PageRank { .. } => "PageRank",
            Algo::Bfs { .. } => "BFS",
            Algo::Sssp { .. } => "SSSP",
            Algo::Bc { .. } => "BC",
            Algo::Radii { .. } => "Radii",
            Algo::Cc => "CC",
            Algo::Tc => "TC",
            Algo::KCore { .. } => "KC",
        }
    }

    /// Table II row for this algorithm.
    pub fn spec(&self) -> AlgorithmSpec {
        match self {
            Algo::PageRank { .. } => AlgorithmSpec {
                name: "PageRank",
                atomic_op: "fp add",
                atomic_level: Level::High,
                random_level: Level::High,
                vtx_prop_bytes: 8,
                n_vtx_props: 1,
                active_list: false,
                reads_src_prop: false,
                needs_undirected: false,
            },
            Algo::Bfs { .. } => AlgorithmSpec {
                name: "BFS",
                atomic_op: "unsigned comp.",
                atomic_level: Level::Low,
                random_level: Level::High,
                vtx_prop_bytes: 4,
                n_vtx_props: 1,
                active_list: true,
                reads_src_prop: false,
                needs_undirected: false,
            },
            Algo::Sssp { .. } => AlgorithmSpec {
                name: "SSSP",
                atomic_op: "signed min & bool comp.",
                atomic_level: Level::High,
                random_level: Level::High,
                vtx_prop_bytes: 8,
                n_vtx_props: 2,
                active_list: true,
                reads_src_prop: true,
                needs_undirected: false,
            },
            Algo::Bc { .. } => AlgorithmSpec {
                name: "BC",
                atomic_op: "min & fp add",
                atomic_level: Level::Medium,
                random_level: Level::High,
                vtx_prop_bytes: 8,
                n_vtx_props: 1,
                active_list: true,
                reads_src_prop: true,
                needs_undirected: false,
            },
            Algo::Radii { .. } => AlgorithmSpec {
                name: "Radii",
                atomic_op: "or & signed min",
                atomic_level: Level::High,
                random_level: Level::High,
                vtx_prop_bytes: 12,
                n_vtx_props: 3,
                active_list: true,
                reads_src_prop: true,
                needs_undirected: false,
            },
            Algo::Cc => AlgorithmSpec {
                name: "CC",
                atomic_op: "unsigned min",
                atomic_level: Level::High,
                random_level: Level::High,
                vtx_prop_bytes: 8,
                n_vtx_props: 2,
                active_list: true,
                reads_src_prop: true,
                needs_undirected: true,
            },
            Algo::Tc => AlgorithmSpec {
                name: "TC",
                atomic_op: "signed add",
                atomic_level: Level::Low,
                random_level: Level::Low,
                vtx_prop_bytes: 8,
                n_vtx_props: 1,
                active_list: false,
                reads_src_prop: false,
                needs_undirected: true,
            },
            Algo::KCore { .. } => AlgorithmSpec {
                name: "KC",
                atomic_op: "signed add",
                atomic_level: Level::Low,
                random_level: Level::Low,
                vtx_prop_bytes: 4,
                n_vtx_props: 1,
                active_list: true,
                reads_src_prop: false,
                needs_undirected: true,
            },
        }
    }

    /// Whether this algorithm can run on `g` (CC/TC/KC need symmetric
    /// graphs, as in the paper, which runs them on `ap`).
    pub fn supports(&self, g: &CsrGraph) -> bool {
        !self.spec().needs_undirected || !g.is_directed()
    }

    /// Replaces a placeholder root with the highest-out-degree vertex of
    /// `g` — a deterministic, well-connected start, mirroring the paper's
    /// use of an "assigned root node".
    pub fn with_default_root(self, g: &CsrGraph) -> Algo {
        let best_root = || {
            (0..g.num_vertices() as VertexId)
                .max_by_key(|&v| g.out_degree(v))
                .unwrap_or(0)
        };
        match self {
            Algo::Bfs { .. } => Algo::Bfs { root: best_root() },
            Algo::Sssp { .. } => Algo::Sssp { root: best_root() },
            Algo::Bc { .. } => Algo::Bc { root: best_root() },
            other => other,
        }
    }

    /// Runs the algorithm on `g` under `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm requires an undirected graph and `g` is
    /// directed (check [`Algo::supports`] first), or if a root is out of
    /// range.
    pub fn run(&self, g: &CsrGraph, ctx: &mut Ctx<'_>) -> AlgoOutput {
        assert!(
            self.supports(g),
            "{} requires an undirected graph",
            self.name()
        );
        match *self {
            Algo::PageRank { iters } => AlgoOutput::Ranks(pagerank(g, ctx, iters)),
            Algo::Bfs { root } => AlgoOutput::Parents(bfs(g, ctx, root)),
            Algo::Sssp { root } => AlgoOutput::Distances(sssp(g, ctx, root)),
            Algo::Bc { root } => AlgoOutput::Paths(bc(g, ctx, root)),
            Algo::Radii { sample } => AlgoOutput::Radius(radii(g, ctx, sample)),
            Algo::Cc => AlgoOutput::Labels(cc(g, ctx)),
            Algo::Tc => AlgoOutput::Triangles(tc(g, ctx)),
            Algo::KCore { k } => AlgoOutput::CoreFlags(kcore(g, ctx, k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullTracer;
    use crate::ExecConfig;
    use omega_graph::generators;

    #[test]
    fn specs_match_table_two_entry_sizes() {
        assert_eq!(Algo::PageRank { iters: 1 }.spec().vtx_prop_bytes, 8);
        assert_eq!(Algo::Bfs { root: 0 }.spec().vtx_prop_bytes, 4);
        assert_eq!(Algo::Radii { sample: 16 }.spec().n_vtx_props, 3);
        assert_eq!(Algo::Sssp { root: 0 }.spec().n_vtx_props, 2);
    }

    #[test]
    fn undirected_requirements_enforced() {
        let directed = generators::path(4).unwrap();
        assert!(!Algo::Cc.supports(&directed));
        assert!(Algo::Bfs { root: 0 }.supports(&directed));
        let undirected = generators::star(4).unwrap();
        assert!(Algo::Tc.supports(&undirected));
    }

    #[test]
    fn default_root_is_well_connected() {
        let g = generators::star(8).unwrap();
        let a = Algo::Bfs { root: 99 }.with_default_root(&g);
        assert_eq!(a, Algo::Bfs { root: 0 });
    }

    #[test]
    fn dispatcher_runs_every_algorithm() {
        let g = generators::rmat_undirected(6, 4, generators::RmatParams::default(), 9).unwrap();
        for algo in ALL_ALGOS {
            let algo = algo.with_default_root(&g);
            let mut t = NullTracer;
            let mut ctx = Ctx::new(ExecConfig::default(), &mut t);
            let out = algo.run(&g, &mut ctx);
            assert!(out.checksum().is_finite(), "{}", algo.name());
        }
    }
}
