//! Cross-validation of the algorithms against their own Table II
//! specifications: the *measured* trace rates must land in the qualitative
//! bands the spec (and the paper) declares, on every dataset class.

use omega_graph::generators::{self, RmatParams};
use omega_graph::{reorder, CsrGraph};
use omega_ligra::algorithms::{Algo, Level, ALL_ALGOS};
use omega_ligra::trace::CollectingTracer;
use omega_ligra::{Ctx, ExecConfig};

fn natural() -> CsrGraph {
    let g = generators::rmat_undirected(9, 6, RmatParams::default(), 12).unwrap();
    reorder::canonical_hot_order(&g).0
}

fn road() -> CsrGraph {
    let g = generators::grid_road(24, 24, 0.1, 50, 3).unwrap();
    reorder::canonical_hot_order(&g).0
}

fn classify(g: &CsrGraph, algo: Algo) -> omega_ligra::trace::TraceClassification {
    let exec = ExecConfig::default();
    let mut tracer = CollectingTracer::new(exec.n_cores);
    let mut ctx = Ctx::new(exec, &mut tracer);
    algo.run(g, &mut ctx);
    tracer.finish().classify()
}

/// Band limits for the qualitative levels, in fractions of all accesses.
fn atomic_band(level: Level) -> (f64, f64) {
    match level {
        Level::Low => (0.0, 0.16),
        Level::Medium => (0.10, 0.28),
        Level::High => (0.15, 0.60),
    }
}

#[test]
fn measured_atomic_rates_match_table_two_levels() {
    let g = natural();
    for algo in ALL_ALGOS {
        let algo = algo.with_default_root(&g);
        if !algo.supports(&g) {
            continue;
        }
        let c = classify(&g, algo);
        let (lo, hi) = atomic_band(algo.spec().atomic_level);
        let measured = c.atomic_fraction();
        assert!(
            (lo..=hi).contains(&measured),
            "{}: measured %atomic {:.3} outside {:?} band [{lo}, {hi}]",
            algo.name(),
            measured,
            algo.spec().atomic_level
        );
    }
}

#[test]
fn random_access_levels_separate_tc_from_the_rest() {
    let g = natural();
    let tc = classify(&g, Algo::Tc);
    for algo in [Algo::PageRank { iters: 1 }, Algo::Cc] {
        let other = classify(&g, algo);
        assert!(
            other.random_fraction() > 4.0 * tc.random_fraction(),
            "{} random {:.3} must dwarf TC's {:.3}",
            algo.name(),
            other.random_fraction(),
            tc.random_fraction()
        );
    }
}

#[test]
fn active_list_algorithms_touch_frontier_structures() {
    let g = natural();
    for algo in ALL_ALGOS {
        let algo = algo.with_default_root(&g);
        if !algo.supports(&g) {
            continue;
        }
        let c = classify(&g, algo);
        if algo.spec().active_list {
            assert!(
                c.frontier_accesses > 0,
                "{} declares an active list",
                algo.name()
            );
        }
    }
}

#[test]
fn src_reading_algorithms_emit_stable_reads() {
    let g = natural();
    for algo in ALL_ALGOS {
        let algo = algo.with_default_root(&g);
        if !algo.supports(&g) {
            continue;
        }
        let exec = ExecConfig::default();
        let mut tracer = CollectingTracer::new(exec.n_cores);
        let mut ctx = Ctx::new(exec, &mut tracer);
        algo.run(&g, &mut ctx);
        // Table II's "read src vtx's vtxProp" column counts only true
        // vtxProp (monitored) arrays — PageRank's source reads go to its
        // auxiliary previous-rank array and do not count.
        let specs = ctx.prop_specs();
        let raw = tracer.finish();
        let monitored_src_reads = raw
            .iter_events()
            .filter(|e| match e {
                omega_ligra::trace::TraceEvent::PropReadSrc { id, .. } => {
                    specs[*id as usize].monitored
                }
                _ => false,
            })
            .count();
        if algo.spec().reads_src_prop {
            assert!(
                monitored_src_reads > 0,
                "{} declares source-property reads",
                algo.name()
            );
        } else {
            assert_eq!(
                monitored_src_reads,
                0,
                "{} declares no (monitored) source-property reads",
                algo.name()
            );
        }
    }
}

#[test]
fn hot_access_shares_differ_by_graph_class() {
    // The Fig. 5 dichotomy, asserted as an invariant: for every
    // vtxProp-heavy algorithm, the top-20% access share on a natural graph
    // must exceed the road-network share by a wide margin.
    let nat = natural();
    let rd = road();
    for algo in [
        Algo::PageRank { iters: 1 },
        Algo::Bfs { root: 0 },
        Algo::Sssp { root: 0 },
    ] {
        let run_share = |g: &CsrGraph| {
            let algo = algo.with_default_root(g);
            let exec = ExecConfig::default();
            let mut tracer = CollectingTracer::new(exec.n_cores);
            let mut ctx = Ctx::new(exec, &mut tracer);
            algo.run(g, &mut ctx);
            let hot = (g.num_vertices() as f64 * 0.2).ceil() as u32;
            tracer.finish().prop_access_fraction_below(hot)
        };
        let natural_share = run_share(&nat);
        let road_share = run_share(&rd);
        assert!(
            natural_share > road_share + 0.25,
            "{}: natural {natural_share:.2} vs road {road_share:.2}",
            algo.name()
        );
    }
}

#[test]
fn every_algorithm_runs_on_every_compatible_dataset_class() {
    for g in [natural(), road()] {
        for algo in ALL_ALGOS {
            let algo = algo.with_default_root(&g);
            if !algo.supports(&g) {
                continue;
            }
            let c = classify(&g, algo);
            assert!(c.total() > 0, "{} produced an empty trace", algo.name());
        }
    }
}
