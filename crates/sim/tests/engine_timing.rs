//! Engine timing-model tests: fractional issue costs, window behaviour,
//! and barrier/finish interplay, against a deterministic fixed-latency
//! memory.

use omega_sim::{
    engine, AccessKind, AccessOutcome, Blocking, CoreOp, MachineConfig, MemAccess, MemorySystem,
    Trace,
};

#[derive(Debug, Default)]
struct FixedMem {
    latency: u64,
}

impl MemorySystem for FixedMem {
    fn access(&mut self, _core: usize, access: MemAccess, now: u64) -> AccessOutcome {
        let blocking = match access.kind {
            AccessKind::Read | AccessKind::ReadStable => Blocking::Window,
            AccessKind::Write => Blocking::None,
            AccessKind::Atomic(_) => Blocking::Full,
        };
        AccessOutcome {
            completion: now + self.latency,
            blocking,
        }
    }
}

fn cfg(issue_cost_x100: u32, window: usize) -> MachineConfig {
    let mut c = MachineConfig::mini_baseline();
    c.core.issue_cost_x100 = issue_cost_x100;
    c.core.max_outstanding = window;
    c
}

#[test]
fn eight_wide_issue_retires_four_accesses_per_cycle() {
    // issue_cost 25/100 cycles per op → 100 stores take 25 cycles.
    let mut mem = FixedMem { latency: 0 };
    let t: Trace = (0..100)
        .map(|i| CoreOp::Access(MemAccess::write(i * 64, 8)))
        .collect();
    let r = engine::run(vec![t], &mut mem, &cfg(25, 4));
    assert_eq!(r.total_cycles, 25);
}

#[test]
fn fractional_compute_accumulates_exactly() {
    let mut mem = FixedMem::default();
    // 150 x100-units per op × 8 ops = 12 cycles, no rounding drift.
    let t: Trace = (0..8).map(|_| CoreOp::ComputeX100(150)).collect();
    let r = engine::run(vec![t], &mut mem, &cfg(100, 4));
    assert_eq!(r.total_cycles, 12);
}

#[test]
fn window_retires_opportunistically() {
    // Latency 10, window 2, issue 1/cycle: loads overlap pairwise, so 6
    // loads finish far sooner than 6 × 10 serial.
    let mut mem = FixedMem { latency: 10 };
    let t: Trace = (0..6)
        .map(|i| CoreOp::Access(MemAccess::read(i * 64, 8)))
        .collect();
    let r = engine::run(vec![t], &mut mem, &cfg(100, 2)).total_cycles;
    assert!(r < 40, "got {r}");
    // Window of 1 forces near-serial execution.
    let mut mem = FixedMem { latency: 10 };
    let t: Trace = (0..6)
        .map(|i| CoreOp::Access(MemAccess::read(i * 64, 8)))
        .collect();
    let serial = engine::run(vec![t], &mut mem, &cfg(100, 1)).total_cycles;
    assert!(
        serial > r,
        "window=1 ({serial}) must be slower than window=2 ({r})"
    );
}

#[test]
fn trailing_barrier_then_empty_trace_terminates() {
    let mut mem = FixedMem::default();
    let t = vec![CoreOp::compute(5), CoreOp::Barrier];
    let r = engine::run(vec![t, vec![CoreOp::Barrier]], &mut mem, &cfg(100, 4));
    assert_eq!(r.total_cycles, 5);
}

#[test]
fn consecutive_barriers_do_not_deadlock() {
    let mut mem = FixedMem::default();
    let t1 = vec![CoreOp::Barrier, CoreOp::Barrier, CoreOp::compute(1)];
    let t2 = vec![CoreOp::Barrier, CoreOp::Barrier, CoreOp::compute(2)];
    let r = engine::run(vec![t1, t2], &mut mem, &cfg(100, 4));
    assert_eq!(r.total_cycles, 2);
}

#[test]
fn full_blocking_serialises_with_window_pending() {
    // A load in flight does not let a Full-blocking atomic start earlier.
    let mut mem = FixedMem { latency: 50 };
    let t = vec![
        CoreOp::Access(MemAccess::read(0, 8)),
        CoreOp::Access(MemAccess::atomic(64, 8, omega_sim::AtomicKind::FpAdd)),
    ];
    let r = engine::run(vec![t], &mut mem, &cfg(100, 4));
    // Atomic issues at ~2 and completes at ~52; the pending load (done at
    // 51) drains by then; trace end waits for the max.
    assert!(r.total_cycles >= 52, "got {}", r.total_cycles);
    assert!(r.per_core[0].atomic_stall_cycles >= 49);
}

#[test]
fn stall_attribution_partitions_time() {
    let mut mem = FixedMem { latency: 30 };
    let t: Trace = (0..20)
        .flat_map(|i| {
            [
                CoreOp::compute(2),
                CoreOp::Access(MemAccess::read(i * 64, 8)),
            ]
        })
        .collect();
    let r = engine::run(vec![t], &mut mem, &cfg(100, 2));
    let c = &r.per_core[0];
    assert_eq!(c.finish_time, r.total_cycles);
    assert_eq!(
        c.attributed_cycles(),
        c.finish_time,
        "every cycle must land in exactly one attribution bucket"
    );
    assert!(c.memory_stall_cycles + c.drain_cycles > 0);
}
