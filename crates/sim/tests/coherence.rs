//! Focused coherence-protocol tests for the baseline hierarchy: state
//! transitions, writeback paths, and stat-consistency rules that the
//! in-module unit tests do not cover.

use omega_sim::hierarchy::CacheHierarchy;
use omega_sim::{AccessKind, AtomicKind, MachineConfig, MemAccess, MemorySystem, LINE_BYTES};

fn mini() -> (MachineConfig, CacheHierarchy) {
    let cfg = MachineConfig::mini_baseline();
    let h = CacheHierarchy::new(&cfg);
    (cfg, h)
}

#[test]
fn exclusive_line_upgrades_silently_on_write() {
    let (_, mut h) = mini();
    // Sole reader: the line arrives Exclusive.
    h.access(0, MemAccess::read(0x4000, 8), 0);
    let before = h.stats();
    // Writing an Exclusive line needs no bank round trip and no invalidations.
    let out = h.access(0, MemAccess::write(0x4000, 8), 1000);
    let after = h.stats();
    assert_eq!(after.l1.hits, before.l1.hits + 1);
    assert_eq!(after.l1.invalidations, before.l1.invalidations);
    assert_eq!(after.noc.packets, before.noc.packets, "silent E→M upgrade");
    assert_eq!(out.completion, 1000 + 2, "L1-latency write");
}

#[test]
fn shared_line_upgrade_invalidates_exactly_the_sharers() {
    let (_, mut h) = mini();
    for core in 0..4 {
        h.access(core, MemAccess::read(0x4000, 8), core as u64 * 100);
    }
    h.access(0, MemAccess::write(0x4000, 8), 10_000);
    assert_eq!(h.stats().l1.invalidations, 3, "three other sharers");
}

#[test]
fn read_after_remote_write_reuses_forwarded_line() {
    let (_, mut h) = mini();
    h.access(0, MemAccess::write(0x4000, 8), 0);
    h.access(1, MemAccess::read(0x4000, 8), 1000); // dirty forward
    let dram_reads = h.stats().dram.reads;
    // Both cores now share the line; re-reads are L1 hits.
    h.access(0, MemAccess::read(0x4000, 8), 2000);
    h.access(1, MemAccess::read(0x4000, 8), 2000);
    let s = h.stats();
    assert_eq!(s.dram.reads, dram_reads, "no extra DRAM trips");
    assert_eq!(s.l1.hits, 2);
}

#[test]
fn dirty_victim_round_trips_through_l2_to_dram() {
    // Tiny L1 (8 lines) and a tiny L2 so dirty data is squeezed all the way
    // out to memory.
    let cfg = MachineConfig {
        l1: omega_sim::CacheConfig {
            capacity: 256,
            ways: 2,
            latency: 2,
        },
        l2: omega_sim::CacheConfig {
            capacity: 512,
            ways: 2,
            latency: 10,
        },
        ..MachineConfig::mini_baseline()
    };
    let mut h = CacheHierarchy::new(&cfg);
    // Stream dirty lines across all banks: the 4-line L1 spills dirty
    // victims into the L2 long before the 128-line L2 fills, and the L2
    // eventually spills to DRAM.
    for i in 0..600u64 {
        h.access(0, MemAccess::write(i * LINE_BYTES, 8), i * 3_000);
    }
    let s = h.stats();
    assert!(s.l1.writebacks > 0, "dirty L1 victims must write back");
    assert!(s.l2.writebacks > 0, "dirty L2 victims must reach DRAM");
    assert!(s.dram.writes > 0);
}

#[test]
fn read_stable_is_plain_read_on_the_baseline() {
    let (_, mut h) = mini();
    let plain = h.access(0, MemAccess::read(0x4000, 8), 0);
    let (_, mut h2) = mini();
    let stable = h2.access(
        0,
        MemAccess {
            addr: 0x4000,
            size: 8,
            kind: AccessKind::ReadStable,
        },
        0,
    );
    assert_eq!(plain.completion, stable.completion);
    assert_eq!(plain.blocking, stable.blocking);
    assert_eq!(h.stats(), h2.stats());
}

#[test]
fn atomic_then_read_from_same_core_hits() {
    let (_, mut h) = mini();
    h.access(0, MemAccess::atomic(0x4000, 8, AtomicKind::SignedAdd), 0);
    let before_misses = h.stats().l1.misses;
    h.access(0, MemAccess::read(0x4000, 8), 5000);
    assert_eq!(
        h.stats().l1.misses,
        before_misses,
        "atomic installed the line Modified"
    );
}

#[test]
fn l2_accesses_never_exceed_l1_misses_plus_writebacks() {
    let (cfg, mut h) = mini();
    // A random-ish mix.
    for i in 0..2_000u64 {
        let addr = (i * 2_654_435_761) % (1 << 20);
        let core = (i % cfg.core.n_cores as u64) as usize;
        match i % 3 {
            0 => h.access(core, MemAccess::read(addr, 8), i * 50),
            1 => h.access(core, MemAccess::write(addr, 8), i * 50),
            _ => h.access(core, MemAccess::atomic(addr, 8, AtomicKind::FpAdd), i * 50),
        };
    }
    let s = h.stats();
    assert!(
        s.l2.accesses() <= s.l1.misses + s.l1.writebacks,
        "L2 sees only L1 misses (dirty-forward hits are counted at the bank): {} vs {}",
        s.l2.accesses(),
        s.l1.misses + s.l1.writebacks
    );
    assert!(
        s.dram.reads <= s.l2.misses,
        "DRAM reads come from L2 misses only"
    );
}

#[test]
fn line_locks_clear_after_completion_window() {
    let (_, mut h) = mini();
    let a = h.access(0, MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd), 0);
    // Long after the lock window, a second atomic pays no lock wait.
    let before = h.stats().atomics.lock_wait_cycles;
    h.access(
        1,
        MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd),
        a.completion + 10_000,
    );
    assert_eq!(h.stats().atomics.lock_wait_cycles, before);
}
