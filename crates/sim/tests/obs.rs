//! Behavioural tests of the host-observability layer (`omega_sim::obs`).
//!
//! The obs registry is process-global, so every test here takes the same
//! local mutex: tests still run on multiple harness threads, but enable /
//! drain pairs never interleave. This integration binary is a separate
//! process from all other test binaries, so nothing outside this file can
//! observe (or perturb) the global state toggled here.

use omega_sim::obs;
use std::sync::Mutex;

/// Serialises every test in this binary around the global obs registry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_layer_is_inert() {
    let _g = locked();
    assert!(!obs::enabled());
    {
        let _a = obs::span("test.inert");
        let _b = obs::span_owned("test.inert_owned".into());
        obs::counter_add("test.inert_counter", 7);
    }
    let dump = obs::drain();
    assert_eq!(dump.opened, 0);
    assert_eq!(dump.closed, 0);
    assert!(dump.aggregates.is_empty());
    assert!(dump.counters.is_empty());
    assert!(dump.spans.is_empty());
    assert!(dump.sim_tracks.is_empty());
}

/// The span-balance property: however spans nest — across recursion
/// depths and across threads — every open is matched by a close, the
/// drained dump reports zero open spans, and self-time never exceeds
/// total time for any aggregate.
#[test]
fn span_nesting_balances_across_threads() {
    let _g = locked();
    obs::enable(true, true);

    // Deterministic irregular nesting: recursion depth driven by a
    // splitmix-style hash of (thread, node) rather than wall clock.
    fn weave(thread: u64, node: u64, depth: u32) {
        let _s = obs::span_owned(format!("test.weave.d{depth}"));
        if depth >= 5 {
            return;
        }
        let mut x = thread
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(node)
            .wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 31;
        for child in 0..(x % 3) {
            weave(thread, node * 4 + child + 1, depth + 1);
        }
    }

    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let _root = obs::span("test.thread_root");
                weave(t, 0, 0);
            })
        })
        .collect();
    {
        let _root = obs::span("test.main_root");
        weave(99, 0, 0);
    }
    for h in handles {
        h.join().unwrap();
    }

    let dump = obs::drain();
    assert!(!obs::enabled(), "drain must disable the layer");
    assert_eq!(dump.opened, dump.closed, "span balance");
    assert_eq!(dump.open_spans(), 0);
    assert!(dump.opened > 5, "the weave opened real spans");
    for agg in &dump.aggregates {
        assert!(agg.count > 0, "{agg:?}");
        assert!(agg.self_ns <= agg.total_ns, "{agg:?}");
        assert!(agg.min_ns <= agg.max_ns, "{agg:?}");
        assert!(agg.max_ns <= agg.total_ns, "{agg:?}");
    }
    // Trace mode retained one record per closed span.
    assert_eq!(dump.spans.len() as u64, dump.closed);
    assert_eq!(dump.spans_dropped, 0);
    // Per-thread interval containment: every deeper span nests inside an
    // enclosing shallower one that is still open at its start.
    for r in &dump.spans {
        if r.depth == 0 {
            continue;
        }
        let contained = dump.spans.iter().any(|p| {
            p.tid == r.tid
                && p.depth == r.depth - 1
                && p.start_ns <= r.start_ns
                && r.start_ns + r.dur_ns <= p.start_ns + p.dur_ns
        });
        assert!(contained, "span {r:?} has no enclosing parent interval");
    }
    // The main thread ran exactly one depth-0 span, so root coverage on
    // the main thread is bounded by the wall since enable.
    assert!(dump.root_ns_main > 0);
    assert!(dump.root_ns_main <= dump.wall_ns);
    assert!(dump.coverage() <= 1.0);
}

#[test]
fn counters_accumulate_and_sort() {
    let _g = locked();
    obs::enable(true, false);
    obs::counter_add("test.zeta", 1);
    obs::counter_add("test.alpha", 2);
    // A snapshot sees the live values mid-run without perturbing them...
    let live = obs::counters_snapshot();
    assert_eq!(
        live,
        vec![("test.alpha".to_string(), 2), ("test.zeta".to_string(), 1)]
    );
    obs::counter_add("test.zeta", 3);
    // ...and the layer keeps accumulating after it.
    let dump = obs::drain();
    let got: Vec<(&str, u64)> = dump
        .counters
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    assert_eq!(got, vec![("test.alpha", 2), ("test.zeta", 4)]);
    assert!(
        obs::counters_snapshot().is_empty(),
        "drain clears the counters"
    );
}

#[test]
fn interval_recorder_requires_a_session_and_coalesces() {
    let _g = locked();
    obs::enable(true, true);

    // No session installed on this thread: recorders refuse to allocate.
    assert!(obs::IntervalRecorder::if_active("test.lane", 4).is_none());

    {
        let _sess = obs::sim_session("unit");
        let mut rec =
            obs::IntervalRecorder::if_active("test.lane", 2).expect("session active, trace on");
        // Touching and overlapping intervals coalesce; the disjoint one
        // stays separate; out-of-order earlier intervals are kept.
        rec.record(0, 10, 20);
        rec.record(0, 20, 30);
        rec.record(0, 25, 40);
        rec.record(0, 100, 110);
        rec.record(0, 2, 4);
        rec.record(1, 5, 9);
        rec.flush();
        rec.flush(); // idempotent
    }

    let dump = obs::drain();
    assert_eq!(dump.sim_sessions, vec!["unit".to_string()]);
    let lane0 = dump
        .sim_tracks
        .iter()
        .find(|t| t.name == "test.lane0")
        .expect("lane 0 flushed");
    // (100, 110) stays open until flush, so the out-of-order (2, 4)
    // lands in the closed list ahead of it.
    assert_eq!(lane0.intervals, vec![(10, 40), (2, 4), (100, 110)]);
    let lane1 = dump
        .sim_tracks
        .iter()
        .find(|t| t.name == "test.lane1")
        .expect("lane 1 flushed");
    assert_eq!(lane1.intervals, vec![(5, 9)]);
    assert_eq!(dump.sim_tracks.len(), 2, "flush is idempotent");
}

/// A real replay traced end to end: the simulated-time tracks the engine,
/// DRAM model, and NoC emit must all be present and well-formed.
#[test]
fn replay_emits_simulated_time_tracks() {
    use omega_sim::hierarchy::CacheHierarchy;
    use omega_sim::{engine, CoreOp, MachineConfig, MemAccess, Trace};

    let _g = locked();
    obs::enable(true, true);
    let dump = {
        let _sess = obs::sim_session("unit-replay");
        let cfg = MachineConfig::mini_baseline();
        let cores = 4usize;
        let mut traces: Vec<Trace> = vec![Vec::new(); cores];
        for i in 0..512u64 {
            let core = (i % cores as u64) as usize;
            // Strided reads big enough to miss the caches and reach DRAM.
            traces[core].push(CoreOp::Access(MemAccess::read(i * 4096, 8)));
            if i % 64 == 0 {
                for t in traces.iter_mut() {
                    t.push(CoreOp::Barrier);
                }
            }
        }
        let mut mem = CacheHierarchy::new(&cfg);
        let report = engine::run(traces, &mut mem, &cfg);
        assert!(report.total_cycles > 0);
        obs::drain()
    };
    assert_eq!(dump.sim_sessions, vec!["unit-replay".to_string()]);
    let names: Vec<&str> = dump.sim_tracks.iter().map(|t| t.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("core")),
        "per-core epoch tracks, got {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("dram.ch")),
        "DRAM channel busy tracks, got {names:?}"
    );
    for t in &dump.sim_tracks {
        assert_eq!(t.session, 1);
        for &(s, e) in &t.intervals {
            assert!(s <= e, "inverted interval in {}: ({s}, {e})", t.name);
        }
    }
}
