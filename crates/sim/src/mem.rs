//! Memory operations, outcomes, and the [`MemorySystem`] trait through which
//! machines (the baseline CMP here, the OMEGA machine in `omega-core`) plug
//! into the replay [`engine`](crate::engine).

use crate::Cycle;

/// The atomic read-modify-write operations of Table II, which are exactly
/// the operations a PISC engine must implement (§V.B: "PageRank requires
/// floating point addition, BFS requires unsigned integer comparison, SSSP
/// requires signed integer min and Bool comparison").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicKind {
    /// Floating-point add (PageRank).
    FpAdd,
    /// Unsigned compare-and-set (BFS parent assignment).
    UnsignedCompareSet,
    /// Signed integer min plus visited-flag compare (SSSP, Radii).
    SignedMin,
    /// Signed integer min (CC label propagation).
    LabelMin,
    /// Bool OR (Radii bitfield updates).
    BoolOr,
    /// Signed integer add (TC, KC counters).
    SignedAdd,
}

impl AtomicKind {
    /// Cycles a PISC ALU needs to execute this operation's microcode
    /// (read-operand, ALU, write-back). Floating point costs more than
    /// integer compare, matching the synthesised PISC of §X.B whose area
    /// and latency are dominated by the FP adder.
    pub fn pisc_cycles(self) -> u32 {
        match self {
            AtomicKind::FpAdd => 3,
            AtomicKind::UnsignedCompareSet => 3,
            AtomicKind::SignedMin | AtomicKind::LabelMin => 2,
            AtomicKind::BoolOr => 2,
            AtomicKind::SignedAdd => 2,
        }
    }
}

/// What a memory access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A load of data guaranteed stable until the next barrier — e.g. a
    /// source vertex's property during an edge scan, which Ligra never
    /// updates mid-iteration. OMEGA's source-vertex buffer may cache such
    /// reads without coherence (§V.C); the baseline treats them as ordinary
    /// loads.
    ReadStable,
    /// A store.
    Write,
    /// An atomic read-modify-write executed by the issuing core (baseline
    /// semantics: the line is locked and the core pipeline holds until
    /// completion — §V: "atomic operations causing the core's pipeline to
    /// be on-hold until their completion").
    Atomic(AtomicKind),
}

/// One memory access in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Virtual address.
    pub addr: u64,
    /// Access size in bytes (1–8; a word-granularity quantity, not a line).
    pub size: u8,
    /// Operation.
    pub kind: AccessKind,
}

impl MemAccess {
    /// A load of `size` bytes at `addr`.
    pub fn read(addr: u64, size: u8) -> Self {
        MemAccess {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// A store of `size` bytes at `addr`.
    pub fn write(addr: u64, size: u8) -> Self {
        MemAccess {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// An atomic RMW of `size` bytes at `addr`.
    pub fn atomic(addr: u64, size: u8, kind: AtomicKind) -> Self {
        MemAccess {
            addr,
            size,
            kind: AccessKind::Atomic(kind),
        }
    }
}

/// How an access occupies the issuing core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Occupies a slot in the core's outstanding-access window until
    /// completion (ordinary loads; overlappable).
    Window,
    /// Stalls the core completely until completion (baseline atomics).
    Full,
    /// Fire-and-forget: the core continues immediately (stores to write
    /// buffers, OMEGA's offloaded atomics).
    None,
}

/// The memory system's answer to one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute cycle at which the access completes.
    pub completion: Cycle,
    /// How the access occupies the core.
    pub blocking: Blocking,
}

/// One operation in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreOp {
    /// Retire `0.01 × arg` cycles worth of non-memory work (scaled fixed
    /// point so an 8-wide core can express sub-cycle bundles).
    ComputeX100(u32),
    /// A memory access.
    Access(MemAccess),
    /// Synchronise with all other cores (Ligra's per-iteration join).
    Barrier,
}

impl CoreOp {
    /// Convenience: a compute bundle of `cycles` whole cycles.
    pub fn compute(cycles: u32) -> Self {
        CoreOp::ComputeX100(cycles * 100)
    }
}

/// A machine's memory subsystem, as seen by the replay engine.
///
/// Implementations: [`crate::hierarchy::CacheHierarchy`] (baseline CMP) and
/// `omega_core::machine::OmegaMemory` (scratchpads + PISCs).
pub trait MemorySystem {
    /// Executes one access issued by `core` at cycle `now`; returns when it
    /// completes and how it blocks the core.
    fn access(&mut self, core: usize, access: MemAccess, now: Cycle) -> AccessOutcome;

    /// Called when all cores reach a barrier (end of a Ligra iteration).
    /// OMEGA uses this to invalidate the source-vertex buffers (§V.C).
    fn barrier(&mut self, _now: Cycle) {}

    /// Called once after the trace is fully replayed, with the final cycle
    /// count, so bandwidth-utilisation statistics can be closed out.
    fn finish(&mut self, _now: Cycle) {}

    /// Takes the telemetry collected during the replay (latency histograms
    /// and the windowed [`crate::stats::MemStats`] time series). Returns
    /// `None` when telemetry was disabled — the default for machines that
    /// do not instrument themselves. Call after [`Self::finish`]; a second
    /// call returns `None`.
    fn take_telemetry(&mut self) -> Option<crate::telemetry::TelemetryReport> {
        None
    }

    /// Checks the machine's internal conservation invariants (live
    /// component ledgers the public stats cannot express) into `out`.
    /// Call after [`Self::finish`] but *before* [`Self::take_telemetry`],
    /// which consumes the histograms some checks compare against. The
    /// default is a no-op for machines without internal ledgers.
    fn audit_into(&self, _out: &mut crate::audit::AuditReport) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemAccess::read(8, 4).kind, AccessKind::Read);
        assert_eq!(MemAccess::write(8, 4).kind, AccessKind::Write);
        assert!(matches!(
            MemAccess::atomic(8, 8, AtomicKind::FpAdd).kind,
            AccessKind::Atomic(AtomicKind::FpAdd)
        ));
    }

    #[test]
    fn fp_add_is_slowest_pisc_op() {
        for k in [
            AtomicKind::UnsignedCompareSet,
            AtomicKind::SignedMin,
            AtomicKind::LabelMin,
            AtomicKind::BoolOr,
            AtomicKind::SignedAdd,
        ] {
            assert!(AtomicKind::FpAdd.pisc_cycles() >= k.pisc_cycles());
        }
    }

    #[test]
    fn compute_helper_scales() {
        assert_eq!(CoreOp::compute(3), CoreOp::ComputeX100(300));
    }
}
