//! # omega-sim
//!
//! A discrete-event, cycle-level chip-multiprocessor timing simulator — the
//! substrate on which the OMEGA reproduction runs (the paper used gem5).
//!
//! The simulator is *trace-driven*: each simulated core consumes a stream of
//! [`CoreOp`]s (compute bundles, loads, stores, atomics, barriers) produced
//! by the instrumented graph framework in `omega-ligra`. Timing comes from:
//!
//! * [`engine`] — the replay engine: per-core in-order issue into a bounded
//!   outstanding-miss window (approximating the memory-level parallelism of
//!   the paper's 8-wide, 192-entry-ROB out-of-order cores), full stalls on
//!   blocking atomics, barrier synchronisation, and exhaustive cycle
//!   attribution (issue vs. memory-stall vs. atomic-stall vs. barrier vs.
//!   drain — the TMAM proxy of Fig. 3; buckets sum to each core's total).
//! * [`cache`] — set-associative, write-back, write-allocate cache arrays
//!   with LRU replacement.
//! * [`hierarchy`] — the baseline CMP memory system of Table III: private
//!   L1s, a shared banked L2 with a directory-based MESI-style coherence
//!   filter, line-granularity transfers, and per-line atomic locking.
//! * [`noc`] — a crossbar interconnect with per-port bandwidth reservation
//!   and byte-level traffic accounting (Fig. 17).
//! * [`dram`] — DDR3-like channels with fixed access latency plus
//!   channel-occupancy-based bandwidth contention (Fig. 16).
//! * [`telemetry`] — opt-in latency histograms and cycle-windowed
//!   [`stats::MemStats`] time series (off by default; zero hot-path cost
//!   when disabled).
//!
//! The OMEGA machine (scratchpads + PISC engines) lives in `omega-core` and
//! plugs in through the [`MemorySystem`] trait.
//!
//! # Example
//!
//! ```
//! use omega_sim::{engine, hierarchy::CacheHierarchy, CoreOp, MachineConfig, MemAccess};
//!
//! let cfg = MachineConfig::mini_baseline();
//! let mut mem = CacheHierarchy::new(&cfg);
//! // One core issuing two loads to the same line: miss then hit.
//! let trace = vec![vec![
//!     CoreOp::Access(MemAccess::read(0x1000, 8)),
//!     CoreOp::Access(MemAccess::read(0x1008, 8)),
//! ]];
//! let report = engine::run(trace, &mut mem, &cfg);
//! assert!(report.total_cycles > cfg.dram.latency as u64);
//! assert_eq!(mem.stats().l1.hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod fingerprint;
pub mod hierarchy;
pub mod mem;
pub mod noc;
pub mod obs;
pub mod stats;
pub mod telemetry;

pub use audit::{AuditReport, AuditViolation};
pub use config::{CacheConfig, CoreConfig, DramConfig, MachineConfig, NocConfig};
pub use engine::{CoreStream, EngineReport, OpSource, StreamSource, Trace, VecOpSource};
pub use fingerprint::{Canonicalize, Fnv64};
pub use mem::{AccessKind, AccessOutcome, AtomicKind, Blocking, CoreOp, MemAccess, MemorySystem};
pub use telemetry::{TelemetryConfig, TelemetryReport};

/// Simulation time, in core clock cycles.
pub type Cycle = u64;

/// Cache-line size in bytes, fixed at 64 as in Table III.
pub const LINE_BYTES: u64 = 64;

/// Rounds an address down to its cache-line base.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
