//! Statistics counters collected by the simulator components.
//!
//! Everything is plain counters so `omega-energy` can turn activity into
//! energy, and the figure harness can print hit rates, traffic, and
//! bandwidth utilisation directly.

/// Hit/miss counters for one cache level (aggregated over instances).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
    }

    /// Field-wise difference against an earlier snapshot (saturating, so a
    /// non-monotone snapshot can never underflow).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }
}

/// Struct-of-arrays bank of per-instance cache counters.
///
/// The hot cache-access paths bump exactly one counter per event; keeping
/// each counter kind in its own contiguous array means an L1-hit burst
/// walks one cache line of `hits` instead of striding over whole
/// `CacheStats` records, and a per-core slice of any one kind is a plain
/// `&[u64]`. Per-instance counters are **per-core-accumulable** state in
/// the parallel-replay discipline: each index is written only on behalf of
/// one cache instance, and the global view is the order-insensitive sum
/// [`CoreCounters::merged`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Per-instance hit counts.
    pub hits: Vec<u64>,
    /// Per-instance miss counts.
    pub misses: Vec<u64>,
    /// Per-instance writeback counts.
    pub writebacks: Vec<u64>,
    /// Per-instance coherence-invalidation counts.
    pub invalidations: Vec<u64>,
}

impl CoreCounters {
    /// A zeroed bank for `n` cache instances.
    pub fn new(n: usize) -> Self {
        CoreCounters {
            hits: vec![0; n],
            misses: vec![0; n],
            writebacks: vec![0; n],
            invalidations: vec![0; n],
        }
    }

    /// Number of instances in the bank.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the bank holds no instances.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// One instance's counters as a [`CacheStats`] record.
    pub fn instance(&self, i: usize) -> CacheStats {
        CacheStats {
            hits: self.hits[i],
            misses: self.misses[i],
            writebacks: self.writebacks[i],
            invalidations: self.invalidations[i],
        }
    }

    /// The order-insensitive sum over all instances — the merge the public
    /// [`MemStats`] view reports.
    pub fn merged(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.len() {
            total.merge(&self.instance(i));
        }
        total
    }
}

/// On-chip interconnect traffic counters (Fig. 17's quantity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets sent.
    pub packets: u64,
    /// Total payload + header bytes moved.
    pub bytes: u64,
    /// Cycles spent queueing behind busy ports (contention).
    pub contention_cycles: u64,
}

impl NocStats {
    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &NocStats) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.contention_cycles += other.contention_cycles;
    }

    /// Field-wise difference against an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &NocStats) -> NocStats {
        NocStats {
            packets: self.packets.saturating_sub(earlier.packets),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            contention_cycles: self
                .contention_cycles
                .saturating_sub(earlier.contention_cycles),
        }
    }
}

/// DRAM activity counters (Fig. 16's quantity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests (line granularity).
    pub reads: u64,
    /// Write requests (writebacks).
    pub writes: u64,
    /// Bytes transferred in either direction.
    pub bytes: u64,
    /// Total cycles during which channels were busy transferring
    /// (summed over channels).
    pub busy_cycles: u64,
    /// Cycles requests waited behind busy channels.
    pub queue_cycles: u64,
    /// Open-page row-buffer hits (zero under the default close-page
    /// policy; populated by the §IX hybrid-policy extension).
    pub row_hits: u64,
    /// Open-page accesses that found a different row open and paid the
    /// precharge. Hits + conflicts + opens partition the open-page
    /// accesses, so Fig.-16-style row-locality ratios have an exact
    /// denominator.
    pub row_conflicts: u64,
    /// Open-page accesses that activated a closed bank (first touch after
    /// reset or after a close-page access precharged the row).
    pub row_opens: u64,
    /// Accesses issued under the open-page policy — the exact denominator
    /// of the row-outcome partition. Close-page accesses (and rank-local
    /// PIM traffic, which always precharges) contribute nothing here, so
    /// the auditor can require `row_hits + row_conflicts + row_opens ==
    /// open_page_accesses` instead of a lossy `<= accesses` bound.
    pub open_page_accesses: u64,
}

impl DramStats {
    /// Achieved bandwidth as a fraction of peak, given the elapsed cycles
    /// and the per-channel peak bytes/cycle. This is the Fig. 16
    /// "DRAM bandwidth utilisation" metric.
    pub fn utilization(&self, elapsed_cycles: u64, channels: usize) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / (elapsed_cycles as f64 * channels as f64)
    }

    /// Average achieved bytes per cycle over the run.
    pub fn achieved_bytes_per_cycle(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.bytes as f64 / elapsed_cycles as f64
    }

    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes += other.bytes;
        self.busy_cycles += other.busy_cycles;
        self.queue_cycles += other.queue_cycles;
        self.row_hits += other.row_hits;
        self.row_conflicts += other.row_conflicts;
        self.row_opens += other.row_opens;
        self.open_page_accesses += other.open_page_accesses;
    }

    /// Field-wise difference against an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            busy_cycles: self.busy_cycles.saturating_sub(earlier.busy_cycles),
            queue_cycles: self.queue_cycles.saturating_sub(earlier.queue_cycles),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            row_conflicts: self.row_conflicts.saturating_sub(earlier.row_conflicts),
            row_opens: self.row_opens.saturating_sub(earlier.row_opens),
            open_page_accesses: self
                .open_page_accesses
                .saturating_sub(earlier.open_page_accesses),
        }
    }

    /// Total requests (reads + writes) — the auditor's "accesses" side of
    /// `reads + writes == accesses`.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-line-locked atomic execution counters (baseline cores or PISCs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomicStats {
    /// Atomic operations executed.
    pub executed: u64,
    /// Cycles spent serialised behind a locked line/vertex.
    pub lock_wait_cycles: u64,
}

impl AtomicStats {
    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &AtomicStats) {
        self.executed += other.executed;
        self.lock_wait_cycles += other.lock_wait_cycles;
    }

    /// Field-wise difference against an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &AtomicStats) -> AtomicStats {
        AtomicStats {
            executed: self.executed.saturating_sub(earlier.executed),
            lock_wait_cycles: self
                .lock_wait_cycles
                .saturating_sub(earlier.lock_wait_cycles),
        }
    }
}

/// Scratchpad counters (OMEGA machines only; zero on the baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchpadStats {
    /// Accesses served by the local scratchpad.
    pub local_accesses: u64,
    /// Accesses served by a remote scratchpad over the crossbar.
    pub remote_accesses: u64,
    /// Requests that fell outside the scratchpad-resident range and went to
    /// the regular cache hierarchy.
    pub range_misses: u64,
    /// Atomic operations offloaded to PISC engines.
    pub pisc_ops: u64,
    /// Cycles PISC engines were busy.
    pub pisc_busy_cycles: u64,
    /// Source-vertex-buffer hits (§V.C).
    pub svb_hits: u64,
    /// Source-vertex-buffer misses.
    pub svb_misses: u64,
    /// Active-list update operations absorbed by scratchpad bits.
    pub active_list_updates: u64,
    /// Cold-vertex atomics offloaded to memory-side PIM engines
    /// (§IX.2 extension; zero on standard OMEGA).
    pub pim_ops: u64,
    /// Cold-vertex accesses served by word-granularity DRAM reads/writes
    /// (§IX.1 extension; zero on standard OMEGA).
    pub word_dram_accesses: u64,
}

impl ScratchpadStats {
    /// Total scratchpad data accesses (local + remote).
    pub fn accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &ScratchpadStats) {
        self.local_accesses += other.local_accesses;
        self.remote_accesses += other.remote_accesses;
        self.range_misses += other.range_misses;
        self.pisc_ops += other.pisc_ops;
        self.pisc_busy_cycles += other.pisc_busy_cycles;
        self.svb_hits += other.svb_hits;
        self.svb_misses += other.svb_misses;
        self.active_list_updates += other.active_list_updates;
        self.pim_ops += other.pim_ops;
        self.word_dram_accesses += other.word_dram_accesses;
    }

    /// Field-wise difference against an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &ScratchpadStats) -> ScratchpadStats {
        ScratchpadStats {
            local_accesses: self.local_accesses.saturating_sub(earlier.local_accesses),
            remote_accesses: self.remote_accesses.saturating_sub(earlier.remote_accesses),
            range_misses: self.range_misses.saturating_sub(earlier.range_misses),
            pisc_ops: self.pisc_ops.saturating_sub(earlier.pisc_ops),
            pisc_busy_cycles: self
                .pisc_busy_cycles
                .saturating_sub(earlier.pisc_busy_cycles),
            svb_hits: self.svb_hits.saturating_sub(earlier.svb_hits),
            svb_misses: self.svb_misses.saturating_sub(earlier.svb_misses),
            active_list_updates: self
                .active_list_updates
                .saturating_sub(earlier.active_list_updates),
            pim_ops: self.pim_ops.saturating_sub(earlier.pim_ops),
            word_dram_accesses: self
                .word_dram_accesses
                .saturating_sub(earlier.word_dram_accesses),
        }
    }
}

/// Combined memory-system statistics returned by every machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1 data caches (all cores merged).
    pub l1: CacheStats,
    /// Shared L2 (all banks merged).
    pub l2: CacheStats,
    /// Crossbar traffic.
    pub noc: NocStats,
    /// Off-chip memory.
    pub dram: DramStats,
    /// Atomic execution.
    pub atomics: AtomicStats,
    /// Scratchpad + PISC (zero for the baseline).
    pub scratchpad: ScratchpadStats,
}

impl MemStats {
    /// Last-level *storage* hit rate: the paper's Fig. 15 metric. For the
    /// baseline this is the L2 hit rate; for OMEGA it counts scratchpad
    /// accesses as hits alongside L2 hits (the scratchpad never misses once
    /// a vertex is resident).
    pub fn last_level_hit_rate(&self) -> f64 {
        let hits = self.l2.hits + self.scratchpad.accesses();
        let total = self.l2.accesses() + self.scratchpad.accesses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Accumulates every component's counters from `other` — the top-level
    /// combinator machines and the window sampler use instead of
    /// hand-summing fields.
    pub fn merge(&mut self, other: &MemStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.noc.merge(&other.noc);
        self.dram.merge(&other.dram);
        self.atomics.merge(&other.atomics);
        self.scratchpad.merge(&other.scratchpad);
    }

    /// Component-wise difference against an earlier snapshot: the
    /// per-window delta the [`crate::telemetry::WindowSampler`] emits.
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1: self.l1.delta_since(&earlier.l1),
            l2: self.l2.delta_since(&earlier.l2),
            noc: self.noc.delta_since(&earlier.noc),
            dram: self.dram.delta_since(&earlier.dram),
            atomics: self.atomics.delta_since(&earlier.atomics),
            scratchpad: self.scratchpad.delta_since(&earlier.scratchpad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            writebacks: 3,
            invalidations: 4,
        };
        a.merge(&CacheStats {
            hits: 10,
            misses: 20,
            writebacks: 30,
            invalidations: 40,
        });
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22,
                writebacks: 33,
                invalidations: 44
            }
        );
    }

    #[test]
    fn core_counters_merge_matches_per_instance_sum() {
        let mut bank = CoreCounters::new(3);
        bank.hits[0] = 5;
        bank.misses[1] = 7;
        bank.writebacks[2] = 2;
        bank.invalidations[1] = 4;
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(
            bank.instance(1),
            CacheStats {
                hits: 0,
                misses: 7,
                writebacks: 0,
                invalidations: 4
            }
        );
        assert_eq!(
            bank.merged(),
            CacheStats {
                hits: 5,
                misses: 7,
                writebacks: 2,
                invalidations: 4
            }
        );
        assert_eq!(CoreCounters::new(0).merged(), CacheStats::default());
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let d = DramStats {
            busy_cycles: 400,
            ..Default::default()
        };
        assert!((d.utilization(100, 4) - 1.0).abs() < 1e-12);
        assert_eq!(d.utilization(0, 4), 0.0);
    }

    #[test]
    fn mem_stats_merge_undoes_delta_since() {
        let earlier = MemStats {
            l1: CacheStats {
                hits: 5,
                misses: 2,
                writebacks: 1,
                invalidations: 0,
            },
            dram: DramStats {
                reads: 3,
                bytes: 192,
                busy_cycles: 30,
                row_hits: 2,
                row_conflicts: 1,
                row_opens: 1,
                ..Default::default()
            },
            noc: NocStats {
                packets: 4,
                bytes: 288,
                contention_cycles: 7,
            },
            atomics: AtomicStats {
                executed: 2,
                lock_wait_cycles: 11,
            },
            scratchpad: ScratchpadStats {
                local_accesses: 9,
                pisc_ops: 3,
                pisc_busy_cycles: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut later = earlier;
        later.merge(&earlier); // later = 2 × earlier
        let delta = later.delta_since(&earlier);
        assert_eq!(delta, earlier);
        let mut rebuilt = earlier;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, later);
    }

    #[test]
    fn delta_since_saturates_instead_of_underflowing() {
        let a = MemStats::default();
        let b = MemStats {
            l1: CacheStats {
                hits: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(a.delta_since(&b), MemStats::default());
    }

    #[test]
    fn last_level_hit_rate_counts_scratchpad_as_hits() {
        let m = MemStats {
            l2: CacheStats {
                hits: 10,
                misses: 10,
                ..Default::default()
            },
            scratchpad: ScratchpadStats {
                local_accesses: 60,
                remote_accesses: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((m.last_level_hit_rate() - 0.9).abs() < 1e-12);
    }
}
