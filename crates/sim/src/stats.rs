//! Statistics counters collected by the simulator components.
//!
//! Everything is plain counters so `omega-energy` can turn activity into
//! energy, and the figure harness can print hit rates, traffic, and
//! bandwidth utilisation directly.

/// Hit/miss counters for one cache level (aggregated over instances).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another instance's counters.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
    }
}

/// On-chip interconnect traffic counters (Fig. 17's quantity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets sent.
    pub packets: u64,
    /// Total payload + header bytes moved.
    pub bytes: u64,
    /// Cycles spent queueing behind busy ports (contention).
    pub contention_cycles: u64,
}

/// DRAM activity counters (Fig. 16's quantity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests (line granularity).
    pub reads: u64,
    /// Write requests (writebacks).
    pub writes: u64,
    /// Bytes transferred in either direction.
    pub bytes: u64,
    /// Total cycles during which channels were busy transferring
    /// (summed over channels).
    pub busy_cycles: u64,
    /// Cycles requests waited behind busy channels.
    pub queue_cycles: u64,
    /// Open-page row-buffer hits (zero under the default close-page
    /// policy; populated by the §IX hybrid-policy extension).
    pub row_hits: u64,
}

impl DramStats {
    /// Achieved bandwidth as a fraction of peak, given the elapsed cycles
    /// and the per-channel peak bytes/cycle. This is the Fig. 16
    /// "DRAM bandwidth utilisation" metric.
    pub fn utilization(&self, elapsed_cycles: u64, channels: usize) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / (elapsed_cycles as f64 * channels as f64)
    }

    /// Average achieved bytes per cycle over the run.
    pub fn achieved_bytes_per_cycle(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.bytes as f64 / elapsed_cycles as f64
    }
}

/// Per-line-locked atomic execution counters (baseline cores or PISCs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomicStats {
    /// Atomic operations executed.
    pub executed: u64,
    /// Cycles spent serialised behind a locked line/vertex.
    pub lock_wait_cycles: u64,
}

/// Scratchpad counters (OMEGA machines only; zero on the baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchpadStats {
    /// Accesses served by the local scratchpad.
    pub local_accesses: u64,
    /// Accesses served by a remote scratchpad over the crossbar.
    pub remote_accesses: u64,
    /// Requests that fell outside the scratchpad-resident range and went to
    /// the regular cache hierarchy.
    pub range_misses: u64,
    /// Atomic operations offloaded to PISC engines.
    pub pisc_ops: u64,
    /// Cycles PISC engines were busy.
    pub pisc_busy_cycles: u64,
    /// Source-vertex-buffer hits (§V.C).
    pub svb_hits: u64,
    /// Source-vertex-buffer misses.
    pub svb_misses: u64,
    /// Active-list update operations absorbed by scratchpad bits.
    pub active_list_updates: u64,
    /// Cold-vertex atomics offloaded to memory-side PIM engines
    /// (§IX.2 extension; zero on standard OMEGA).
    pub pim_ops: u64,
    /// Cold-vertex accesses served by word-granularity DRAM reads/writes
    /// (§IX.1 extension; zero on standard OMEGA).
    pub word_dram_accesses: u64,
}

impl ScratchpadStats {
    /// Total scratchpad data accesses (local + remote).
    pub fn accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }
}

/// Combined memory-system statistics returned by every machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1 data caches (all cores merged).
    pub l1: CacheStats,
    /// Shared L2 (all banks merged).
    pub l2: CacheStats,
    /// Crossbar traffic.
    pub noc: NocStats,
    /// Off-chip memory.
    pub dram: DramStats,
    /// Atomic execution.
    pub atomics: AtomicStats,
    /// Scratchpad + PISC (zero for the baseline).
    pub scratchpad: ScratchpadStats,
}

impl MemStats {
    /// Last-level *storage* hit rate: the paper's Fig. 15 metric. For the
    /// baseline this is the L2 hit rate; for OMEGA it counts scratchpad
    /// accesses as hits alongside L2 hits (the scratchpad never misses once
    /// a vertex is resident).
    pub fn last_level_hit_rate(&self) -> f64 {
        let hits = self.l2.hits + self.scratchpad.accesses();
        let total = self.l2.accesses() + self.scratchpad.accesses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            writebacks: 3,
            invalidations: 4,
        };
        a.merge(&CacheStats {
            hits: 10,
            misses: 20,
            writebacks: 30,
            invalidations: 40,
        });
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22,
                writebacks: 33,
                invalidations: 44
            }
        );
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let d = DramStats {
            busy_cycles: 400,
            ..Default::default()
        };
        assert!((d.utilization(100, 4) - 1.0).abs() < 1e-12);
        assert_eq!(d.utilization(0, 4), 0.0);
    }

    #[test]
    fn last_level_hit_rate_counts_scratchpad_as_hits() {
        let m = MemStats {
            l2: CacheStats {
                hits: 10,
                misses: 10,
                ..Default::default()
            },
            scratchpad: ScratchpadStats {
                local_accesses: 60,
                remote_accesses: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((m.last_level_hit_rate() - 0.9).abs() < 1e-12);
    }
}
