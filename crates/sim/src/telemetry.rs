//! Telemetry: latency histograms and cycle-windowed statistic sampling.
//!
//! The paper's evaluation is built on *observability artifacts* — the
//! Fig. 3 cycle breakdown, Fig. 16's DRAM bandwidth utilisation, Fig. 17's
//! on-chip traffic. Whole-run aggregates (see [`crate::stats`]) answer
//! "how much"; this module answers "when" and "with what distribution":
//!
//! * [`LatencyHistogram`] — a log2-bucketed histogram with quantile
//!   estimation, cheap enough to sit on per-access paths (one `record` is
//!   a `leading_zeros` and two adds).
//! * [`WindowSampler`] — snapshots a cumulative [`MemStats`] every
//!   `window_cycles` simulated cycles into a time series of per-window
//!   deltas, from which bandwidth-utilisation-over-time, LLC hit rate per
//!   window, NoC bytes per window, and PISC occupancy per window follow.
//! * [`TelemetryReport`] — the bundle a machine returns from
//!   [`crate::MemorySystem::take_telemetry`] after a replay.
//!
//! Everything here is **off by default**: [`TelemetryConfig::default`] is
//! disabled, and every instrumented component guards its hook behind one
//! `Option` check, so the streaming replay hot path pays nothing when
//! telemetry is not requested.

use crate::stats::MemStats;
use crate::Cycle;

/// Telemetry knob carried by [`crate::MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether any telemetry (histograms + window sampling) is collected.
    pub enabled: bool,
    /// Window length in cycles for the [`WindowSampler`] time series.
    pub window_cycles: Cycle,
}

impl TelemetryConfig {
    /// Default sampling window: 65 536 cycles (≈33 µs at 2 GHz), small
    /// enough to resolve Ligra iteration phases at mini scale.
    pub const DEFAULT_WINDOW: Cycle = 1 << 16;

    /// Telemetry disabled (the default): zero per-op cost.
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            window_cycles: Self::DEFAULT_WINDOW,
        }
    }

    /// Telemetry enabled with the given sampling window (clamped to ≥ 1).
    pub fn windowed(window_cycles: Cycle) -> Self {
        TelemetryConfig {
            enabled: true,
            window_cycles: window_cycles.max(1),
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl crate::fingerprint::Canonicalize for TelemetryConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_bool(self.enabled);
        // The window only matters when sampling is on: disabled configs
        // hash identically regardless of their (unused) window length.
        if self.enabled {
            h.write_u64(self.window_cycles);
        }
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
const N_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram over `u64` values.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]` (bucket 64's upper bound is `u64::MAX`). Exact
/// minimum, maximum, count, and sum are tracked alongside, so single-sample
/// and extreme-value queries are exact; quantiles interpolate linearly
/// within a bucket and are clamped to the observed `[min, max]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Branch-free log2 bucketing: `64 − leading_zeros` maps 0 to bucket 0
    /// naturally (`leading_zeros(0) == 64`), so the hot `record` path is a
    /// count-leading-zeros and a subtract with no compare.
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`.
    fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), or `None` when
    /// empty. Linear interpolation within the covering bucket, clamped to
    /// the observed `[min, max]`; monotone in `q`, and exact for a single
    /// sample and at the extremes.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extremes are tracked exactly.
        if target == 1 {
            return Some(self.min);
        }
        if target == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = (target - seen) as f64 / n as f64;
                // Saturating: in bucket 64 the span rounds up to 2^63 as
                // an f64, and lo + 2^63 would overflow.
                let pos = lo.saturating_add(((hi - lo) as f64 * frac) as u64);
                return Some(pos.clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Accumulates another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The populated buckets as `(lo, hi, count)` triples, in ascending
    /// value order — the stable shape the JSON report serialises.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, n)
            })
    }

    /// The populated buckets as `(bucket index, count)` pairs, in ascending
    /// index order — the lossless counterpart of
    /// [`LatencyHistogram::nonzero_buckets`], paired with
    /// [`LatencyHistogram::from_raw`] for persistence.
    pub fn raw_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Rebuilds a histogram from state previously exported via
    /// [`LatencyHistogram::raw_buckets`] plus the exact `sum`, `min`, and
    /// `max`. Returns `None` when the parts are structurally inconsistent
    /// (out-of-range bucket index, non-empty buckets with `min > max`, or
    /// extrema landing outside their claimed buckets) — the store treats
    /// that as corruption and recomputes.
    pub fn from_raw(buckets: &[(usize, u64)], sum: u128, min: u64, max: u64) -> Option<Self> {
        let mut h = LatencyHistogram::new();
        for &(i, n) in buckets {
            if i >= N_BUCKETS || n == 0 {
                return None;
            }
            h.buckets[i] = h.buckets[i].checked_add(n)?;
            h.count = h.count.checked_add(n)?;
        }
        if h.count == 0 {
            return (sum == 0 && min == u64::MAX && max == 0).then_some(h);
        }
        if min > max
            || h.buckets[Self::bucket_index(min)] == 0
            || h.buckets[Self::bucket_index(max)] == 0
        {
            return None;
        }
        h.sum = sum;
        h.min = min;
        h.max = max;
        Some(h)
    }
}

/// One window of the sampled time series: the statistics accumulated
/// between the previous sample point and `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Cycle at which the window closed.
    pub end: Cycle,
    /// Counter deltas over the window (cumulative minus previous sample).
    pub delta: MemStats,
}

/// Snapshots a cumulative [`MemStats`] into per-window deltas every
/// `window_cycles`.
///
/// The owning memory system calls [`WindowSampler::due`] (one compare) on
/// its access path and [`WindowSampler::tick`] only when a boundary has
/// been crossed, then [`WindowSampler::flush`] once at the end of the
/// replay. The engine's per-core times have bounded divergence — `now` can
/// regress between calls — which is harmless here: boundaries only ever
/// advance, and counter deltas are computed from the monotone cumulative
/// statistics, never from `now`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSampler {
    window: Cycle,
    next_boundary: Cycle,
    last: MemStats,
    samples: Vec<WindowSample>,
}

impl WindowSampler {
    /// A sampler emitting one [`WindowSample`] per `window_cycles`
    /// (clamped to ≥ 1).
    pub fn new(window_cycles: Cycle) -> Self {
        let window = window_cycles.max(1);
        WindowSampler {
            window,
            next_boundary: window,
            last: MemStats::default(),
            samples: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window_cycles(&self) -> Cycle {
        self.window
    }

    /// Whether `now` has crossed the next window boundary — the one-compare
    /// guard the per-access path uses before paying for [`Self::tick`].
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// Closes every window boundary at or before `now`. The first window
    /// closed receives the whole delta since the previous sample; any
    /// further boundaries crossed in the same jump close with zero deltas,
    /// keeping the series aligned to absolute cycle boundaries.
    pub fn tick(&mut self, now: Cycle, cumulative: &MemStats) {
        while now >= self.next_boundary {
            self.samples.push(WindowSample {
                end: self.next_boundary,
                delta: cumulative.delta_since(&self.last),
            });
            self.last = *cumulative;
            self.next_boundary += self.window;
        }
    }

    /// Closes all complete windows and emits a final partial window for any
    /// residual activity. Call once, when the replay finishes.
    pub fn flush(&mut self, now: Cycle, cumulative: &MemStats) {
        self.tick(now, cumulative);
        if *cumulative != self.last {
            self.samples.push(WindowSample {
                end: now,
                delta: cumulative.delta_since(&self.last),
            });
            self.last = *cumulative;
        }
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consumes the sampler, returning its time series.
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }
}

/// Everything a machine collected during one replay with telemetry
/// enabled. Returned by [`crate::MemorySystem::take_telemetry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Window length of the time series.
    pub window_cycles: Cycle,
    /// Per-window [`MemStats`] deltas; the deltas sum to the run totals.
    pub windows: Vec<WindowSample>,
    /// DRAM queueing delay per access (cycles spent behind channel backlog).
    pub dram_queue: LatencyHistogram,
    /// Crossbar port contention per packet (queueing beyond serialisation).
    pub noc_contention: LatencyHistogram,
    /// End-to-end L1-miss service latency per missing access.
    pub miss_latency: LatencyHistogram,
    /// Lock/serialisation wait per atomic (line locks on the baseline,
    /// PISC back-pressure and per-entry serialisation on OMEGA).
    pub lock_wait: LatencyHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CacheStats, DramStats, NocStats};

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(37);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(37), "q={q}");
        }
        assert_eq!(h.min(), Some(37));
        assert_eq!(h.max(), Some(37));
        assert_eq!(h.mean(), 37.0);
    }

    #[test]
    fn zero_values_land_in_the_zero_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(0, 0, 2)]);
    }

    #[test]
    fn u64_max_is_representable() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.max(), Some(u64::MAX));
        // The sum must not overflow.
        assert_eq!(h.sum(), 2u128 * u64::MAX as u128);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut x = 1664525u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> (x % 50));
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        assert_eq!(h.quantile(0.0), Some(h.min().unwrap()));
        assert_eq!(h.quantile(1.0), Some(h.max().unwrap()));
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(120);
        for i in 0..=10 {
            let v = h.quantile(i as f64 / 10.0).unwrap();
            assert!((100..=120).contains(&v), "got {v}");
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [0u64, 1, 7, 63, 64, 1000, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 5, 12_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram changes nothing.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    fn stats(l2_hits: u64, dram_bytes: u64, noc_bytes: u64) -> MemStats {
        MemStats {
            l2: CacheStats {
                hits: l2_hits,
                ..Default::default()
            },
            dram: DramStats {
                bytes: dram_bytes,
                ..Default::default()
            },
            noc: NocStats {
                bytes: noc_bytes,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn sampler_emits_deltas_that_merge_back_to_totals() {
        let mut s = WindowSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.tick(100, &stats(10, 640, 32));
        s.tick(250, &stats(25, 1280, 64)); // crosses 200; 300 not yet due
        s.flush(275, &stats(30, 1281, 65));
        let samples = s.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].end, 100);
        assert_eq!(samples[0].delta.l2.hits, 10);
        assert_eq!(samples[1].end, 200);
        assert_eq!(samples[1].delta.l2.hits, 15);
        assert_eq!(samples[2].end, 275);
        assert_eq!(samples[2].delta.l2.hits, 5);
        // Window-sampler delta correctness under merge: the per-window
        // deltas recombine to the cumulative totals.
        let mut total = MemStats::default();
        for w in samples {
            total.merge(&w.delta);
        }
        assert_eq!(total, stats(30, 1281, 65));
    }

    #[test]
    fn sampler_crossing_many_boundaries_keeps_alignment() {
        let mut s = WindowSampler::new(10);
        s.tick(35, &stats(7, 0, 0)); // crosses 10, 20, 30 in one jump
        let samples = s.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].end, 10);
        assert_eq!(samples[0].delta.l2.hits, 7);
        assert_eq!(samples[1].end, 20);
        assert_eq!(samples[1].delta.l2.hits, 0);
        assert_eq!(samples[2].end, 30);
        assert!(!s.due(39));
        assert!(s.due(40));
    }

    #[test]
    fn flush_without_residual_adds_nothing() {
        let mut s = WindowSampler::new(100);
        s.tick(100, &stats(10, 0, 0));
        s.flush(150, &stats(10, 0, 0));
        assert_eq!(s.samples().len(), 1);
    }

    #[test]
    fn raw_buckets_round_trip_exactly() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 63, 64, 1000, u64::MAX] {
            h.record(v);
        }
        let raw: Vec<(usize, u64)> = h.raw_buckets().collect();
        let back =
            LatencyHistogram::from_raw(&raw, h.sum(), h.min().unwrap(), h.max().unwrap()).unwrap();
        assert_eq!(back, h);
        // Empty histograms round-trip too.
        let empty = LatencyHistogram::new();
        assert_eq!(
            LatencyHistogram::from_raw(&[], 0, u64::MAX, 0).unwrap(),
            empty
        );
    }

    #[test]
    fn from_raw_rejects_inconsistent_state() {
        // Out-of-range bucket index.
        assert!(LatencyHistogram::from_raw(&[(65, 1)], 1, 1, 1).is_none());
        // Zero count in a listed bucket.
        assert!(LatencyHistogram::from_raw(&[(1, 0)], 0, u64::MAX, 0).is_none());
        // min > max.
        assert!(LatencyHistogram::from_raw(&[(1, 2)], 3, 2, 1).is_none());
        // Extremum outside its claimed bucket: min=1000 lands in bucket 10,
        // but only bucket 1 is populated.
        assert!(LatencyHistogram::from_raw(&[(1, 2)], 2000, 1000, 1000).is_none());
        // Non-empty parts but empty bucket list.
        assert!(LatencyHistogram::from_raw(&[], 5, 1, 4).is_none());
    }

    #[test]
    fn config_canonicalisation_ignores_window_only_when_off() {
        use crate::fingerprint::{Canonicalize, Fnv64};
        let digest = |c: TelemetryConfig| {
            let mut h = Fnv64::new();
            c.canonicalize(&mut h);
            h.finish()
        };
        assert_eq!(
            digest(TelemetryConfig::off()),
            digest(TelemetryConfig {
                enabled: false,
                window_cycles: 123,
            })
        );
        assert_ne!(
            digest(TelemetryConfig::windowed(1024)),
            digest(TelemetryConfig::windowed(2048))
        );
        assert_ne!(
            digest(TelemetryConfig::off()),
            digest(TelemetryConfig::windowed(TelemetryConfig::DEFAULT_WINDOW))
        );
    }

    #[test]
    fn config_default_is_off() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.window_cycles, TelemetryConfig::DEFAULT_WINDOW);
        assert!(TelemetryConfig::windowed(0).window_cycles >= 1);
        assert!(TelemetryConfig::windowed(512).enabled);
    }
}
