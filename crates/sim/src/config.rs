//! Machine configuration (the paper's Table III), plus the scaled-down
//! "mini" preset used by the evaluation harness.
//!
//! Scaling discipline (see DESIGN.md): datasets are generated at ≈1/160 of
//! the paper's vertex counts, so all *capacities* here are scaled by the
//! same factor while all *latencies* are kept at their Table III values.
//! This preserves the resident-fraction of `vtxProp` in each storage level,
//! which is the quantity the paper's results depend on.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes (per instance: per-core for L1, per-bank for L2).
    pub capacity: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of 64-byte lines.
    pub fn lines(&self) -> u64 {
        self.capacity / crate::LINE_BYTES
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.lines() / self.ways as u64).max(1)
    }
}

/// Core (pipeline) timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Number of cores.
    pub n_cores: usize,
    /// Maximum outstanding non-blocking memory accesses per core — the
    /// memory-level-parallelism proxy for the paper's 192-entry ROB.
    pub max_outstanding: usize,
    /// Issue cost per trace operation, in cycles ×100 (an 8-wide core
    /// retires several ops per cycle; 25 means 4 ops/cycle).
    pub issue_cost_x100: u32,
}

/// Crossbar interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// One-way traversal latency in cycles (request or response).
    pub latency: u32,
    /// Payload bytes moved per cycle per port (128-bit bus = 16).
    pub bytes_per_cycle: u32,
    /// Control/header bytes added to every packet.
    pub header_bytes: u32,
}

/// DRAM channel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Access latency in core cycles (row activation + transfer start).
    pub latency: u32,
    /// Peak bandwidth per channel in bytes per core cycle (12.8 GB/s at
    /// 2 GHz ⇒ 6.4 B/cycle).
    pub bytes_per_cycle: f64,
    /// Row-buffer policy applied to ordinary (cache-hierarchy) accesses.
    /// `ClosePage` reproduces the paper's flat ≈100-cycle DRAM model;
    /// `OpenPage` is used by the §IX hybrid-policy extension.
    pub default_mode: crate::dram::RowMode,
}

/// Complete machine description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Private per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2; one bank per core, `l2.capacity` is the per-bank size.
    pub l2: CacheConfig,
    /// Crossbar parameters.
    pub noc: NocConfig,
    /// Memory parameters.
    pub dram: DramConfig,
    /// Extra cycles a blocking atomic occupies the line/core beyond a
    /// write hit (lock + RMW turnaround on a general-purpose core).
    pub atomic_overhead: u32,
    /// Cycles successive atomics to the *same line* from different cores
    /// are spaced apart: the MESI line-handoff time. The issuing core still
    /// waits for its own full completion, but the next core's RMW can begin
    /// once the line moves on — atomics pipeline across cores at this
    /// granularity rather than serialising full miss paths.
    pub atomic_handoff: u32,
    /// Telemetry collection (latency histograms + windowed time series).
    /// Disabled by default; see [`crate::telemetry`].
    pub telemetry: crate::telemetry::TelemetryConfig,
}

impl MachineConfig {
    /// The paper's Table III baseline at full scale: 16 cores, 16 KB L1
    /// I/D, 2 MB shared L2 per core, 4×DDR3-1600, crossbar with 128-bit
    /// links and ≈17-cycle average remote latency.
    pub fn paper_baseline() -> Self {
        MachineConfig {
            core: CoreConfig {
                n_cores: 16,
                max_outstanding: 12,
                issue_cost_x100: 25,
            },
            l1: CacheConfig {
                capacity: 16 * 1024,
                ways: 8,
                latency: 2,
            },
            l2: CacheConfig {
                capacity: 2 * 1024 * 1024,
                ways: 8,
                latency: 10,
            },
            noc: NocConfig {
                latency: 8,
                bytes_per_cycle: 16,
                header_bytes: 8,
            },
            // 60-cycle device latency: together with the L1→NoC→L2 path
            // this yields the ≈100-cycle end-to-end "cycles to reach DRAM"
            // the paper's §X model uses.
            dram: DramConfig {
                channels: 4,
                latency: 60,
                bytes_per_cycle: 6.4,
                default_mode: crate::dram::RowMode::ClosePage,
            },
            atomic_overhead: 8,
            atomic_handoff: 24,
            telemetry: crate::telemetry::TelemetryConfig::off(),
        }
    }

    /// The scaled-down baseline used by the harness: capacities at ≈1/160
    /// of Table III (L1 512 B, L2 16 KB per core), latencies unchanged.
    pub fn mini_baseline() -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.l1.capacity = 512;
        cfg.l1.ways = 4;
        cfg.l2.capacity = 16 * 1024;
        cfg
    }

    /// Total L2 capacity across banks.
    pub fn l2_total(&self) -> u64 {
        self.l2.capacity * self.core.n_cores as u64
    }

    /// Index of the L2 bank (and NoC port) owning `addr` — line-interleaved
    /// across banks.
    pub fn l2_bank_of(&self, addr: u64) -> usize {
        ((addr / crate::LINE_BYTES) % self.core.n_cores as u64) as usize
    }

    /// Index of the DRAM channel owning `addr`.
    pub fn dram_channel_of(&self, addr: u64) -> usize {
        ((addr / crate::LINE_BYTES) % self.dram.channels as u64) as usize
    }
}

impl crate::fingerprint::Canonicalize for CacheConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_u64(self.capacity);
        h.write_u32(self.ways);
        h.write_u32(self.latency);
    }
}

impl crate::fingerprint::Canonicalize for CoreConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_usize(self.n_cores);
        h.write_usize(self.max_outstanding);
        h.write_u32(self.issue_cost_x100);
    }
}

impl crate::fingerprint::Canonicalize for NocConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_u32(self.latency);
        h.write_u32(self.bytes_per_cycle);
        h.write_u32(self.header_bytes);
    }
}

impl crate::fingerprint::Canonicalize for DramConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_usize(self.channels);
        h.write_u32(self.latency);
        h.write_f64(self.bytes_per_cycle);
        h.write_u8(match self.default_mode {
            crate::dram::RowMode::OpenPage => 0,
            crate::dram::RowMode::ClosePage => 1,
        });
    }
}

impl crate::fingerprint::Canonicalize for MachineConfig {
    fn canonicalize(&self, h: &mut crate::fingerprint::Fnv64) {
        self.core.canonicalize(h);
        self.l1.canonicalize(h);
        self.l2.canonicalize(h);
        self.noc.canonicalize(h);
        self.dram.canonicalize(h);
        h.write_u32(self.atomic_overhead);
        h.write_u32(self.atomic_handoff);
        self.telemetry.canonicalize(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_three() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.core.n_cores, 16);
        assert_eq!(c.l1.capacity, 16 * 1024);
        assert_eq!(c.l2_total(), 32 * 1024 * 1024);
        assert_eq!(c.dram.channels, 4);
        // 128-bit bus.
        assert_eq!(c.noc.bytes_per_cycle, 16);
    }

    #[test]
    fn mini_scales_capacity_not_latency() {
        let p = MachineConfig::paper_baseline();
        let m = MachineConfig::mini_baseline();
        assert!(m.l2.capacity < p.l2.capacity);
        assert_eq!(m.l2.latency, p.l2.latency);
        assert_eq!(m.dram.latency, p.dram.latency);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            capacity: 512,
            ways: 4,
            latency: 2,
        };
        assert_eq!(c.lines(), 8);
        assert_eq!(c.sets(), 2);
    }

    #[test]
    fn bank_interleaving_covers_all_banks() {
        let c = MachineConfig::mini_baseline();
        let mut seen = vec![false; c.core.n_cores];
        for i in 0..c.core.n_cores as u64 {
            seen[c.l2_bank_of(i * crate::LINE_BYTES)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn same_line_same_bank() {
        let c = MachineConfig::mini_baseline();
        assert_eq!(c.l2_bank_of(0x1000), c.l2_bank_of(0x103F));
        assert_ne!(c.l2_bank_of(0x1000), c.l2_bank_of(0x1040));
    }

    #[test]
    fn canonicalisation_is_stable_and_field_sensitive() {
        use crate::fingerprint::{Canonicalize, Fnv64};
        let digest = |c: &MachineConfig| {
            let mut h = Fnv64::new();
            c.canonicalize(&mut h);
            h.finish()
        };
        let base = MachineConfig::mini_baseline();
        assert_eq!(digest(&base), digest(&base.clone()));
        assert_ne!(digest(&base), digest(&MachineConfig::paper_baseline()));
        // Every class of field perturbs the digest.
        let mut m = base;
        m.l1.ways += 1;
        assert_ne!(digest(&base), digest(&m));
        let mut m = base;
        m.dram.bytes_per_cycle += 0.1;
        assert_ne!(digest(&base), digest(&m));
        let mut m = base;
        m.dram.default_mode = crate::dram::RowMode::OpenPage;
        assert_ne!(digest(&base), digest(&m));
        let mut m = base;
        m.atomic_handoff += 1;
        assert_ne!(digest(&base), digest(&m));
        let mut m = base;
        m.telemetry = crate::telemetry::TelemetryConfig::windowed(4096);
        assert_ne!(digest(&base), digest(&m));
    }
}
