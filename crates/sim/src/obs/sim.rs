//! Simulated-time interval capture.
//!
//! The timing models (engine epochs, DRAM channels, NoC ports) run in
//! *cycles*, not host time. In trace mode each replay installs a
//! thread-local **sim session** ([`sim_session`]); component models then
//! allocate an [`IntervalRecorder`] at construction — but only when a
//! session is active on the constructing thread, so unrelated threads
//! (and disabled runs) pay one `Option` branch per event. Recorders
//! coalesce touching intervals per lane (channel / port / core) so a
//! million back-to-back busy cycles become one trace event, and flush
//! whole tracks into the global registry at `finish` time.

use super::{emit_sim_track, new_sim_session, trace_enabled};
use std::cell::Cell;

thread_local! {
    static SESSION: Cell<u64> = const { Cell::new(0) };
}

/// A named group of simulated-time intervals, all in cycles, belonging to
/// one sim session (one replay).
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrack {
    /// 1-based session id; labels live in `ObsDump::sim_sessions`.
    pub session: u64,
    /// Track name, e.g. `dram.ch3`, `noc.port0`, `core2`.
    pub name: String,
    /// Closed `[start, end]` cycle intervals.
    pub intervals: Vec<(u64, u64)>,
}

/// RAII guard scoping a simulated replay session on the current thread.
/// Restores the previously active session (if any) on drop.
#[derive(Debug)]
pub struct SimSession {
    prev: u64,
    active: bool,
}

/// Opens a sim session labelled `label` (e.g. `sd/pagerank omega`) on the
/// current thread. Inert unless tracing is enabled.
pub fn sim_session(label: &str) -> SimSession {
    if !trace_enabled() {
        return SimSession {
            prev: 0,
            active: false,
        };
    }
    let id = new_sim_session(label);
    let prev = SESSION.with(|s| s.replace(id));
    SimSession { prev, active: true }
}

impl Drop for SimSession {
    fn drop(&mut self) {
        if self.active {
            SESSION.with(|s| s.set(self.prev));
        }
    }
}

fn current_session() -> u64 {
    if !trace_enabled() {
        return 0;
    }
    SESSION.with(Cell::get)
}

/// Whether a sim session is active on this thread (and tracing is on).
#[inline]
pub fn sim_active() -> bool {
    current_session() != 0
}

#[derive(Debug, Default, Clone)]
struct Lane {
    open: Option<(u64, u64)>,
    closed: Vec<(u64, u64)>,
}

/// Per-lane coalescing collector for simulated-time intervals. Lanes map
/// to DRAM channels, NoC ports, or cores; touching or overlapping
/// intervals within a lane merge into one.
#[derive(Debug, Clone)]
pub struct IntervalRecorder {
    session: u64,
    prefix: &'static str,
    lanes: Vec<Lane>,
}

impl IntervalRecorder {
    /// Builds a recorder bound to the current thread's sim session, or
    /// `None` when no session is active — the disabled path's one branch
    /// then lives at each record site via `Option`.
    pub fn if_active(prefix: &'static str, lanes: usize) -> Option<Box<Self>> {
        let session = current_session();
        if session == 0 {
            return None;
        }
        Some(Box::new(IntervalRecorder {
            session,
            prefix,
            lanes: vec![Lane::default(); lanes],
        }))
    }

    /// Records `[start, end]` cycles on `lane`, merging with the open
    /// interval when they touch or overlap. Out-of-order earlier
    /// intervals (laggard cores) are kept unmerged.
    pub fn record(&mut self, lane: usize, start: u64, end: u64) {
        let l = &mut self.lanes[lane];
        match &mut l.open {
            None => l.open = Some((start, end.max(start))),
            Some(cur) => {
                if start > cur.1 {
                    l.closed.push(*cur);
                    *cur = (start, end.max(start));
                } else if end < cur.0 {
                    l.closed.push((start, end));
                } else {
                    cur.0 = cur.0.min(start);
                    cur.1 = cur.1.max(end);
                }
            }
        }
    }

    /// Moves every lane's intervals into the global registry as
    /// `<prefix><lane>` tracks. Idempotent: lanes are left empty.
    pub fn flush(&mut self) {
        for (i, l) in self.lanes.iter_mut().enumerate() {
            if let Some(cur) = l.open.take() {
                l.closed.push(cur);
            }
            if l.closed.is_empty() {
                continue;
            }
            emit_sim_track(
                self.session,
                format!("{}{}", self.prefix, i),
                std::mem::take(&mut l.closed),
            );
        }
    }
}
