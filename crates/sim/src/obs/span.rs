//! RAII host-time spans.
//!
//! A [`Span`] measures the wall-clock between its creation and its drop
//! on a thread-aware monotonic clock. Spans nest per thread via a
//! thread-local stack that also attributes *self time*: each close
//! subtracts the time spent in child spans opened on the same thread, so
//! a hot leaf is visible even when buried under wrapper spans. When
//! observability is off (`obs::profiling_enabled() == false`), [`span`]
//! is a single relaxed atomic load returning an inert guard.

use super::{bump_opened, now_ns, profiling_enabled, record_close, tid};
use std::borrow::Cow;
use std::cell::RefCell;

thread_local! {
    /// One entry per open span on this thread: accumulated child ns.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A scoped host-time span; closes (and records) on drop. Inert when
/// observability was off at open time.
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    name: Cow<'static, str>,
    start_ns: u64,
}

/// Opens a span with a static name. One branch when observability is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !profiling_enabled() {
        return Span(None);
    }
    open(Cow::Borrowed(name))
}

/// Opens a span with a dynamically built name (e.g. `figure.table1`).
#[inline]
pub fn span_owned(name: String) -> Span {
    if !profiling_enabled() {
        return Span(None);
    }
    open(Cow::Owned(name))
}

fn open(name: Cow<'static, str>) -> Span {
    bump_opened();
    STACK.with(|s| s.borrow_mut().push(0));
    Span(Some(SpanInner {
        name,
        start_ns: now_ns(),
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let dur_ns = now_ns().saturating_sub(inner.start_ns);
        let (child_ns, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let child = s.pop().unwrap_or(0);
            if let Some(parent) = s.last_mut() {
                *parent += dur_ns;
            }
            (child, s.len() as u32)
        });
        record_close(
            &inner.name,
            tid(),
            inner.start_ns,
            dur_ns,
            dur_ns.saturating_sub(child_ns),
            depth,
        );
    }
}
