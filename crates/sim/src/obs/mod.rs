//! Host-side self-profiling and tracing (`omega_obs`).
//!
//! Everything else in `omega_sim` measures the *simulated machine*; this
//! module measures the *simulator* — where host wall-clock goes while the
//! replay engine, the store, and the figure derivations run. Two data
//! kinds share one process-global registry:
//!
//! * **Host spans** ([`span`] / [`span_owned`]): RAII scoped timers on a
//!   monotonic clock, nested per thread. Every close updates a per-name
//!   aggregate (count / total / self / min / max); in trace mode the full
//!   span record is kept as well, so the timeline can be exported as
//!   Chrome Trace Events (see `omega_bench::obs_report`).
//! * **Simulated-time intervals** ([`IntervalRecorder`], [`sim_session`]):
//!   per-core epoch activity, DRAM channel busy windows and NoC
//!   contention bursts, in *cycles*, grouped per replay session so host
//!   overhead and simulated behaviour can be inspected in one Perfetto
//!   view.
//!
//! ## Overhead discipline
//!
//! Observability is **off by default** and every hook costs exactly one
//! predictable branch while off: [`span`] reads one relaxed atomic and
//! returns an inert guard; sim-interval recorders are `Option`-boxed and
//! only allocated when a trace session is active on the constructing
//! thread. Disabled runs are therefore bit-identical to a build without
//! the hooks — enforced by the fuzzer's obs-transparency oracle and the
//! golden disabled-path test. Nothing recorded here ever enters a
//! `RunReport`, a store entry, or a fingerprint: obs state is host-side
//! only and process-global, never part of `MachineConfig`.
//!
//! ## Time bases
//!
//! Host spans are in **nanoseconds** since an arbitrary process epoch
//! ([`now_ns`]); simulated intervals are in **cycles**. The exporter keeps
//! them on separate trace processes — they share a viewer, not a clock.

pub mod sim;
pub mod span;

pub use sim::{sim_active, sim_session, IntervalRecorder, SimSession, SimTrack};
pub use span::{span, span_owned, Span};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

const PROFILE: u8 = 1;
const TRACE: u8 = 2;

/// Cap on retained full span records in trace mode (aggregates never drop).
const SPAN_CAP: usize = 1 << 20;
/// Cap on retained simulated-time intervals across all sessions.
const SIM_CAP: u64 = 2 << 20;

static FLAGS: AtomicU8 = AtomicU8::new(0);
static OPENED: AtomicU64 = AtomicU64::new(0);
static CLOSED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local monotonic epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A small sequential id for the calling thread (1, 2, …), assigned on
/// first use. `std::thread::ThreadId` has no stable integer view, and the
/// trace format wants short stable tids.
pub fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// Whether any observability (profiling or tracing) is on.
#[inline]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// Whether span aggregation is on (implied by tracing).
#[inline]
pub fn profiling_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & PROFILE != 0
}

/// Whether full span records and simulated-time intervals are kept.
#[inline]
pub fn trace_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & TRACE != 0
}

/// Per-name span aggregate. `self_ns` excludes time spent in child spans
/// opened on the same thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// Span name.
    pub name: String,
    /// Number of closed spans with this name.
    pub count: u64,
    /// Total inclusive duration.
    pub total_ns: u64,
    /// Total duration minus same-thread child span time.
    pub self_ns: u64,
    /// Shortest single span.
    pub min_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// One fully recorded span (trace mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Thread the span ran on (see [`tid`]).
    pub tid: u64,
    /// Start, ns since the process epoch.
    pub start_ns: u64,
    /// Inclusive duration in ns.
    pub dur_ns: u64,
    /// Nesting depth on its thread at open time (0 = root).
    pub depth: u32,
}

#[derive(Default)]
struct AggCell {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
pub(crate) struct Registry {
    enable_ns: u64,
    main_tid: u64,
    aggregates: HashMap<String, AggCell>,
    root_ns_main: u64,
    counters: HashMap<String, u64>,
    spans: Vec<SpanRecord>,
    spans_dropped: u64,
    sim_sessions: Vec<String>,
    sim_tracks: Vec<SimTrack>,
    sim_intervals: u64,
    sim_dropped: u64,
}

pub(crate) fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Turns observability on. `profile` keeps per-name span aggregates;
/// `trace` additionally retains full span records and simulated-time
/// intervals (and implies `profile`). The calling thread is recorded as
/// the main thread for coverage accounting.
pub fn enable(profile: bool, trace: bool) {
    let mut flags = 0;
    if profile || trace {
        flags |= PROFILE;
    }
    if trace {
        flags |= TRACE;
    }
    let t = tid();
    let mut r = registry();
    r.enable_ns = now_ns();
    r.main_tid = t;
    drop(r);
    FLAGS.store(flags, Ordering::SeqCst);
}

/// Turns observability off without draining. Already-open spans still
/// record on close; new hooks become inert.
pub fn disable() {
    FLAGS.store(0, Ordering::SeqCst);
}

/// Everything the registry collected since [`enable`], drained in one go.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsDump {
    /// Wall-clock ns between [`enable`] and the drain.
    pub wall_ns: u64,
    /// The thread that called [`enable`].
    pub main_tid: u64,
    /// Spans opened while enabled.
    pub opened: u64,
    /// Spans closed while enabled.
    pub closed: u64,
    /// Total inclusive ns of depth-0 spans on the main thread — the
    /// numerator of [`ObsDump::coverage`].
    pub root_ns_main: u64,
    /// Per-name aggregates, sorted by name for determinism.
    pub aggregates: Vec<SpanAgg>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Full span records (trace mode only), in close order.
    pub spans: Vec<SpanRecord>,
    /// Spans not retained because [`SPAN_CAP`] was hit.
    pub spans_dropped: u64,
    /// Label per simulated session, 1-based (session id 1 is index 0).
    pub sim_sessions: Vec<String>,
    /// Simulated-time interval tracks.
    pub sim_tracks: Vec<SimTrack>,
    /// Sim intervals not retained because the cap was hit.
    pub sim_dropped: u64,
}

impl ObsDump {
    /// Spans opened but never closed (0 for a balanced run).
    pub fn open_spans(&self) -> u64 {
        self.opened.saturating_sub(self.closed)
    }

    /// Fraction of wall-clock attributed to root spans on the main
    /// thread, in `[0, 1]` (may exceed 1 marginally if spans outlive the
    /// drain point's measurement).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.root_ns_main as f64 / self.wall_ns as f64
    }
}

/// Disables observability and drains the registry into an [`ObsDump`].
pub fn drain() -> ObsDump {
    FLAGS.store(0, Ordering::SeqCst);
    let now = now_ns();
    let mut r = registry();
    let mut aggregates: Vec<SpanAgg> = r
        .aggregates
        .drain()
        .map(|(name, a)| SpanAgg {
            name,
            count: a.count,
            total_ns: a.total_ns,
            self_ns: a.self_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
        })
        .collect();
    aggregates.sort_by(|a, b| a.name.cmp(&b.name));
    let mut counters: Vec<(String, u64)> = r.counters.drain().collect();
    counters.sort();
    let dump = ObsDump {
        wall_ns: now.saturating_sub(r.enable_ns),
        main_tid: r.main_tid,
        opened: OPENED.swap(0, Ordering::SeqCst),
        closed: CLOSED.swap(0, Ordering::SeqCst),
        root_ns_main: std::mem::take(&mut r.root_ns_main),
        aggregates,
        counters,
        spans: std::mem::take(&mut r.spans),
        spans_dropped: std::mem::take(&mut r.spans_dropped),
        sim_sessions: std::mem::take(&mut r.sim_sessions),
        sim_tracks: std::mem::take(&mut r.sim_tracks),
        sim_dropped: std::mem::take(&mut r.sim_dropped),
    };
    r.sim_intervals = 0;
    dump
}

/// Adds `v` to the named counter. One branch when disabled.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !profiling_enabled() {
        return;
    }
    let mut r = registry();
    *r.counters.entry(name.to_string()).or_insert(0) += v;
}

/// Sets the named counter to `v` (gauge semantics — last write wins).
/// Monotonic sums use [`counter_add`]; sizes of bounded structures (the
/// `omega-serve` memo entry/byte gauges) use this. One branch when
/// disabled.
#[inline]
pub fn counter_set(name: &'static str, v: u64) {
    if !profiling_enabled() {
        return;
    }
    let mut r = registry();
    r.counters.insert(name.to_string(), v);
}

/// The named counters' current values, sorted by name, *without* draining
/// or disabling anything — the live view a long-running service (the
/// `omega-serve` `stats` method) reads while spans keep recording. Empty
/// when profiling is off.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let r = registry();
    let mut v: Vec<(String, u64)> = r.counters.iter().map(|(k, &n)| (k.clone(), n)).collect();
    v.sort();
    v
}

pub(crate) fn record_close(
    name: &str,
    t: u64,
    start_ns: u64,
    dur_ns: u64,
    self_ns: u64,
    depth: u32,
) {
    CLOSED.fetch_add(1, Ordering::Relaxed);
    let keep_record = trace_enabled();
    let mut r = registry();
    let a = r.aggregates.entry(name.to_string()).or_default();
    if a.count == 0 {
        a.min_ns = dur_ns;
        a.max_ns = dur_ns;
    } else {
        a.min_ns = a.min_ns.min(dur_ns);
        a.max_ns = a.max_ns.max(dur_ns);
    }
    a.count += 1;
    a.total_ns += dur_ns;
    a.self_ns += self_ns;
    if depth == 0 && t == r.main_tid {
        r.root_ns_main += dur_ns;
    }
    if keep_record {
        if r.spans.len() < SPAN_CAP {
            r.spans.push(SpanRecord {
                name: name.to_string(),
                tid: t,
                start_ns,
                dur_ns,
                depth,
            });
        } else {
            r.spans_dropped += 1;
        }
    }
}

pub(crate) fn bump_opened() {
    OPENED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn new_sim_session(label: &str) -> u64 {
    let mut r = registry();
    r.sim_sessions.push(label.to_string());
    r.sim_sessions.len() as u64
}

pub(crate) fn emit_sim_track(session: u64, name: String, mut intervals: Vec<(u64, u64)>) {
    let mut r = registry();
    let room = SIM_CAP.saturating_sub(r.sim_intervals) as usize;
    if intervals.len() > room {
        r.sim_dropped += (intervals.len() - room) as u64;
        intervals.truncate(room);
    }
    if intervals.is_empty() {
        return;
    }
    r.sim_intervals += intervals.len() as u64;
    r.sim_tracks.push(SimTrack {
        session,
        name,
        intervals,
    });
}
