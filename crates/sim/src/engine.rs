//! Trace-replay engine: drives per-core operation streams through a
//! [`MemorySystem`] in global time order.
//!
//! ## Core timing model
//!
//! The paper's cores are 8-wide out-of-order with 192-entry ROBs; what
//! matters for a memory-subsystem study is how much memory-level
//! parallelism they extract and when they stall. The engine models each
//! core as:
//!
//! * in-order issue of trace operations, with a fractional issue cost per
//!   op (several ops per cycle, as an 8-wide machine would retire),
//! * a window of up to `max_outstanding` incomplete loads (MLP bound);
//!   issuing into a full window stalls until the oldest-completing load
//!   drains — the **memory-bound** time of the Fig. 3 TMAM breakdown,
//! * complete pipeline holds on `Blocking::Full` accesses (baseline
//!   atomics) — the **atomic-stall** time,
//! * `Blocking::None` accesses (stores, offloaded atomics) that retire
//!   immediately.
//!
//! Cores interact only through the shared [`MemorySystem`]; the engine
//! executes operations in ascending per-core time, so contention
//! (bank ports, DRAM channels, line locks) is resolved in causal order.
//!
//! [`CoreOp::Barrier`] implements Ligra's per-iteration joins: every core
//! waits until all cores arrive, then all resume at the same cycle and the
//! memory system is notified (OMEGA flushes its source-vertex buffers).
//!
//! ## Staged (epoch-parallel) replay
//!
//! Timing itself cannot be parallelised without changing results: the
//! shared contention state (directory, line locks, NoC ports, DRAM
//! channels) is consulted with zero lookahead, so any core-time sharding
//! would reorder contention resolution and diverge from the serial
//! engine. What *can* run in parallel is producing the op streams —
//! lowering is purely per-core and timing-independent.
//!
//! [`run_staged`] exploits exactly that split: worker threads own disjoint
//! per-core [`CoreStream`]s (the thread-local staging state) and lower
//! ahead of the replay in fixed-size op epochs of [`STAGE_CHUNK`]
//! operations, pushed over bounded channels. The timing loop stays
//! single-threaded and byte-for-byte identical ([`run_source`] is reused
//! unchanged, fed by a [`StagedSource`] demultiplexer), so the result is
//! **bit-identical** to the serial engine regardless of worker count or
//! thread scheduling: the engine's behaviour depends only on the per-core
//! op sequences, and each core's sequence is produced by a single worker
//! in order.

use crate::config::MachineConfig;
use crate::mem::{Blocking, CoreOp, MemorySystem};
use crate::Cycle;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender};

/// A fully materialised per-core operation stream.
pub type Trace = Vec<CoreOp>;

/// A pull-based supplier of per-core operation streams.
///
/// The engine asks the source for one operation at a time, so lowering can
/// happen lazily while the replay is in flight — no second, fully lowered
/// copy of the trace ever needs to exist. `next(core)` must keep returning
/// `None` once core `core`'s stream is exhausted.
pub trait OpSource {
    /// Number of core streams this source supplies.
    fn n_cores(&self) -> usize;
    /// The next operation for `core`, or `None` when its stream has ended.
    fn next(&mut self, core: usize) -> Option<CoreOp>;
}

/// [`OpSource`] over fully materialised traces (the compatibility path for
/// hand-built op vectors in tests and the ablation harness).
#[derive(Debug)]
pub struct VecOpSource {
    traces: Vec<Trace>,
    pos: Vec<usize>,
}

impl VecOpSource {
    /// Wraps one materialised trace per core.
    pub fn new(traces: Vec<Trace>) -> Self {
        let pos = vec![0; traces.len()];
        VecOpSource { traces, pos }
    }
}

impl OpSource for VecOpSource {
    fn n_cores(&self) -> usize {
        self.traces.len()
    }

    fn next(&mut self, core: usize) -> Option<CoreOp> {
        let op = self.traces[core].get(self.pos[core]).copied();
        if op.is_some() {
            self.pos[core] += 1;
        }
        op
    }
}

/// A single core's op stream, producible off-thread.
///
/// This is the unit of work [`run_staged`] hands to a staging worker: one
/// core's lazily lowered operation sequence, owned by exactly one thread.
/// `next_op` must keep returning `None` once the stream is exhausted.
pub trait CoreStream: Send {
    /// The next operation, or `None` at end of stream.
    fn next_op(&mut self) -> Option<CoreOp>;
}

/// A materialised trace is trivially a [`CoreStream`].
impl CoreStream for std::vec::IntoIter<CoreOp> {
    fn next_op(&mut self) -> Option<CoreOp> {
        self.next()
    }
}

/// [`OpSource`] over one [`CoreStream`] per core — the serial adapter used
/// when [`run_staged`] runs with a single worker. Pull order per core is
/// identical to the staged path, so both produce the same replay.
#[derive(Debug)]
pub struct StreamSource<C: CoreStream> {
    streams: Vec<C>,
}

impl<C: CoreStream> StreamSource<C> {
    /// Wraps one stream per core.
    pub fn new(streams: Vec<C>) -> Self {
        StreamSource { streams }
    }
}

impl<C: CoreStream> OpSource for StreamSource<C> {
    fn n_cores(&self) -> usize {
        self.streams.len()
    }

    fn next(&mut self, core: usize) -> Option<CoreOp> {
        self.streams[core].next_op()
    }
}

/// Operations per staging epoch: the chunk size workers lower ahead of the
/// timing loop. A chunk shorter than this (possibly empty) is the final
/// chunk of its core's stream — that is the end-of-stream marker, so no
/// separate control message exists on the channel.
pub const STAGE_CHUNK: usize = 4096;

/// [`OpSource`] that demultiplexes staged op chunks arriving from worker
/// threads back into per-core streams for the (single-threaded) timing
/// loop. Chunks for cores other than the one currently demanded are
/// buffered; a worker produces round-robin across its owned cores, so the
/// buffer held for any core is bounded by the chunk imbalance between that
/// core and its siblings on the same worker.
struct StagedSource {
    /// `owner[core]` = index of the worker (and channel) producing it.
    owner: Vec<usize>,
    buf: Vec<VecDeque<CoreOp>>,
    done: Vec<bool>,
    rx: Vec<Receiver<(usize, Vec<CoreOp>)>>,
}

impl OpSource for StagedSource {
    fn n_cores(&self) -> usize {
        self.owner.len()
    }

    fn next(&mut self, core: usize) -> Option<CoreOp> {
        loop {
            if let Some(op) = self.buf[core].pop_front() {
                return Some(op);
            }
            if self.done[core] {
                return None;
            }
            let received = {
                // Host time the timing loop spends blocked on staging.
                let _wait = crate::obs::span("engine.stage_wait");
                self.rx[self.owner[core]].recv()
            };
            match received {
                Ok((c, chunk)) => {
                    if chunk.len() < STAGE_CHUNK {
                        self.done[c] = true;
                    }
                    self.buf[c].extend(chunk);
                }
                Err(_) => {
                    // The worker died mid-stream (a panic during lowering).
                    // Truncate all of its cores so the replay loop can wind
                    // down; the scope join below re-raises the panic, so no
                    // truncated result ever escapes.
                    let w = self.owner[core];
                    for (i, d) in self.done.iter_mut().enumerate() {
                        if self.owner[i] == w {
                            *d = true;
                        }
                    }
                }
            }
        }
    }
}

/// Lowers one worker shard: round-robin over the owned cores, one
/// [`STAGE_CHUNK`]-sized chunk each per pass, until every stream ends. The
/// short final chunk doubles as the end-of-stream marker.
fn stage_worker<C: CoreStream>(mut shard: Vec<(usize, C)>, tx: SyncSender<(usize, Vec<CoreOp>)>) {
    let _span = crate::obs::span("engine.stage_lower");
    while !shard.is_empty() {
        let mut k = 0;
        while k < shard.len() {
            let (core, stream) = &mut shard[k];
            let mut chunk = Vec::with_capacity(STAGE_CHUNK);
            while chunk.len() < STAGE_CHUNK {
                match stream.next_op() {
                    Some(op) => chunk.push(op),
                    None => break,
                }
            }
            let finished = chunk.len() < STAGE_CHUNK;
            if tx.send((*core, chunk)).is_err() {
                // Consumer gone (replay loop unwound): stop quietly.
                return;
            }
            if finished {
                shard.remove(k);
            } else {
                k += 1;
            }
        }
    }
}

/// Replays per-core streams against `mem`, lowering them on `workers`
/// staging threads while the timing loop runs on the calling thread.
///
/// With `workers <= 1` (or a single stream) this degenerates to a plain
/// serial pull through [`StreamSource`] — no threads, no channels. With
/// more, cores are assigned round-robin to workers (`core % workers`),
/// each worker lowers its cores in [`STAGE_CHUNK`]-op epochs onto a
/// bounded channel, and the timing loop demultiplexes via [`StagedSource`].
/// Results are bit-identical to the serial engine in either case — see the
/// module docs for why.
///
/// # Panics
///
/// Panics if `streams.len()` exceeds `cfg.core.n_cores`, or re-raises a
/// panic from a staging worker.
pub fn run_staged<C: CoreStream, M: MemorySystem + ?Sized>(
    streams: Vec<C>,
    mem: &mut M,
    cfg: &MachineConfig,
    workers: usize,
) -> EngineReport {
    let n = streams.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        let mut source = StreamSource::new(streams);
        return run_source(&mut source, mem, cfg);
    }

    let mut shards: Vec<Vec<(usize, C)>> = (0..workers).map(|_| Vec::new()).collect();
    for (core, stream) in streams.into_iter().enumerate() {
        shards[core % workers].push((core, stream));
    }
    let owner: Vec<usize> = (0..n).map(|core| core % workers).collect();

    std::thread::scope(|scope| {
        let mut rx = Vec::with_capacity(workers);
        for shard in shards {
            // Two chunks of headroom per owned core keeps workers lowering
            // ahead without unbounded buffering.
            let (tx, r) = std::sync::mpsc::sync_channel(2 * shard.len());
            rx.push(r);
            scope.spawn(move || stage_worker(shard, tx));
        }
        let mut source = StagedSource {
            owner,
            buf: (0..n).map(|_| VecDeque::new()).collect(),
            done: vec![false; n],
            rx,
        };
        run_source(&mut source, mem, cfg)
    })
}

/// Per-core cycle attribution.
///
/// Every cycle of a core's lifetime `[0, finish_time]` is charged to
/// exactly one bucket — issue (compute), memory-bound window stall, atomic
/// full-pipeline stall, barrier wait, or end-of-phase drain — so the Fig. 3
/// TMAM-style breakdown is reproducible directly from this struct. The
/// conservation invariant ([`CoreReport::attributed_cycles`]` ==
/// finish_time`) is enforced by tests on every machine kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Operations executed.
    pub ops: u64,
    /// Cycles attributed to compute bundles and issue occupancy.
    pub compute_cycles: Cycle,
    /// Cycles stalled waiting for a window slot to free up (memory-bound
    /// time: the front end is blocked on the oldest outstanding load).
    pub memory_stall_cycles: Cycle,
    /// Cycles stalled on blocking atomics.
    pub atomic_stall_cycles: Cycle,
    /// Cycles parked at barriers waiting for other cores.
    pub barrier_cycles: Cycle,
    /// Cycles draining the whole outstanding-access window at a barrier or
    /// at trace end (memory latency exposed once no further work can
    /// overlap it).
    pub drain_cycles: Cycle,
    /// Cycle at which this core finished its trace.
    pub finish_time: Cycle,
}

impl CoreReport {
    /// Sum of all five attribution buckets. Equals [`Self::finish_time`]
    /// on every replay — the engine advances a core's clock only through
    /// attributed paths.
    pub fn attributed_cycles(&self) -> Cycle {
        self.compute_cycles
            + self.memory_stall_cycles
            + self.atomic_stall_cycles
            + self.barrier_cycles
            + self.drain_cycles
    }
}

/// Result of one replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineReport {
    /// Cycle at which the last core finished.
    pub total_cycles: Cycle,
    /// Per-core attribution.
    pub per_core: Vec<CoreReport>,
}

impl EngineReport {
    /// Fraction of total core-time stalled on memory or atomics — the
    /// proxy for the paper's Fig. 3 "memory bound" TMAM metric. Window
    /// stalls, end-of-phase drains, and atomic holds all count as stalled;
    /// barrier waiting is excluded from the denominator.
    pub fn memory_bound_fraction(&self) -> f64 {
        let (mut stalled, mut busy) = (0u64, 0u64);
        for c in &self.per_core {
            stalled += c.memory_stall_cycles + c.drain_cycles + c.atomic_stall_cycles;
            busy += c.finish_time - c.barrier_cycles;
        }
        if busy == 0 {
            0.0
        } else {
            stalled as f64 / busy as f64
        }
    }

    /// Fraction of total core-time stalled specifically on atomics.
    pub fn atomic_bound_fraction(&self) -> f64 {
        let (mut stalled, mut busy) = (0u64, 0u64);
        for c in &self.per_core {
            stalled += c.atomic_stall_cycles;
            busy += c.finish_time - c.barrier_cycles;
        }
        if busy == 0 {
            0.0
        } else {
            stalled as f64 / busy as f64
        }
    }
}

#[derive(Debug)]
struct CoreState {
    time: Cycle,
    issue_acc_x100: u64,
    window: Vec<Cycle>,
    at_barrier: bool,
    finished: bool,
    report: CoreReport,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            time: 0,
            issue_acc_x100: 0,
            window: Vec::new(),
            at_barrier: false,
            finished: false,
            report: CoreReport::default(),
        }
    }

    /// Waits for the oldest-completing window entry, attributing the wait to
    /// memory stall, and removes every entry that has completed by then.
    fn drain_one(&mut self) {
        if let Some(&min) = self.window.iter().min() {
            if min > self.time {
                self.report.memory_stall_cycles += min - self.time;
                self.time = min;
            }
            let t = self.time;
            self.window.retain(|&c| c > t);
        }
    }

    /// Waits for every outstanding access (barrier/trace-end drain),
    /// attributing the wait to the drain bucket: latency exposed here can
    /// never be overlapped with further work, unlike a window stall.
    fn drain_all(&mut self) {
        if let Some(&max) = self.window.iter().max() {
            if max > self.time {
                self.report.drain_cycles += max - self.time;
                self.time = max;
            }
        }
        self.window.clear();
    }
}

/// Replays `traces` (one per core) against `mem`.
///
/// Compatibility wrapper over [`run_source`] for fully materialised traces;
/// cores without a trace entry (if `traces.len() < n_cores`) simply idle.
///
/// # Panics
///
/// Panics if `traces.len()` exceeds `cfg.core.n_cores`.
pub fn run<M: MemorySystem>(traces: Vec<Trace>, mem: &mut M, cfg: &MachineConfig) -> EngineReport {
    let mut source = VecOpSource::new(traces);
    run_source(&mut source, mem, cfg)
}

/// Replays the streams supplied by `source` against `mem`.
///
/// This is the real engine: it pulls one [`CoreOp`] at a time from the
/// source, so op streams can be lowered lazily while the replay runs.
///
/// # Panics
///
/// Panics if `source.n_cores()` exceeds `cfg.core.n_cores`.
pub fn run_source<S: OpSource, M: MemorySystem + ?Sized>(
    source: &mut S,
    mem: &mut M,
    cfg: &MachineConfig,
) -> EngineReport {
    assert!(
        source.n_cores() <= cfg.core.n_cores,
        "{} traces for {} cores",
        source.n_cores(),
        cfg.core.n_cores
    );
    let n = source.n_cores();
    let mut cores: Vec<CoreState> = (0..n).map(|_| CoreState::new()).collect();
    let max_outstanding = cfg.core.max_outstanding.max(1);
    let _span = crate::obs::span("engine.timing_loop");
    // Per-core simulated epoch activity (trace mode only): each lane holds
    // the cycle its core's current epoch started at.
    let mut epochs = crate::obs::IntervalRecorder::if_active("core", n).map(|r| (r, vec![0u64; n]));

    loop {
        // Pick the runnable core with the smallest local time.
        let mut next: Option<usize> = None;
        for (i, c) in cores.iter().enumerate() {
            if !c.finished && !c.at_barrier {
                match next {
                    Some(j) if cores[j].time <= c.time => {}
                    _ => next = Some(i),
                }
            }
        }
        let Some(i) = next else {
            // Everyone is finished or parked at a barrier.
            let any_waiting = cores.iter().any(|c| c.at_barrier);
            if !any_waiting {
                break;
            }
            // Release the barrier: all waiting cores resume at the max time.
            let release = cores
                .iter()
                .filter(|c| c.at_barrier)
                .map(|c| c.time)
                .max()
                .expect("at least one waiting core");
            if let Some((rec, start)) = epochs.as_mut() {
                for (ci, c) in cores.iter().enumerate() {
                    if c.at_barrier {
                        rec.record(ci, start[ci], c.time);
                        start[ci] = release;
                    }
                }
            }
            for c in cores.iter_mut().filter(|c| c.at_barrier) {
                c.report.barrier_cycles += release - c.time;
                c.time = release;
                c.at_barrier = false;
            }
            mem.barrier(release);
            continue;
        };

        let core = &mut cores[i];
        let Some(op) = source.next(i) else {
            core.drain_all();
            core.finished = true;
            core.report.finish_time = core.time;
            if let Some((rec, start)) = epochs.as_mut() {
                rec.record(i, start[i], core.time);
            }
            debug_assert_eq!(
                core.report.attributed_cycles(),
                core.report.finish_time,
                "core {i}: stall buckets must partition wall time at retirement"
            );
            continue;
        };
        core.report.ops += 1;

        match op {
            CoreOp::ComputeX100(k) => {
                core.issue_acc_x100 += k as u64;
                let whole = core.issue_acc_x100 / 100;
                core.issue_acc_x100 %= 100;
                core.time += whole;
                core.report.compute_cycles += whole;
            }
            CoreOp::Barrier => {
                core.drain_all();
                core.at_barrier = true;
            }
            CoreOp::Access(access) => {
                // Issue occupancy.
                core.issue_acc_x100 += cfg.core.issue_cost_x100 as u64;
                let whole = core.issue_acc_x100 / 100;
                core.issue_acc_x100 %= 100;
                core.time += whole;
                core.report.compute_cycles += whole;

                // A full window stalls the front end.
                while core.window.len() >= max_outstanding {
                    core.drain_one();
                }
                let now = core.time;
                let out = mem.access(i, access, now);
                match out.blocking {
                    Blocking::Window => {
                        // Opportunistically retire completed entries.
                        let t = core.time;
                        core.window.retain(|&c| c > t);
                        core.window.push(out.completion);
                    }
                    Blocking::Full => {
                        if out.completion > core.time {
                            core.report.atomic_stall_cycles += out.completion - core.time;
                            core.time = out.completion;
                        }
                    }
                    Blocking::None => {}
                }
            }
        }
    }

    if let Some((mut rec, _)) = epochs {
        rec.flush();
    }
    let total = cores
        .iter()
        .map(|c| c.report.finish_time)
        .max()
        .unwrap_or(0);
    mem.finish(total);
    EngineReport {
        total_cycles: total,
        per_core: cores.into_iter().map(|c| c.report).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{AccessKind, AccessOutcome, AtomicKind, MemAccess};
    use crate::MachineConfig;

    /// A memory system with fixed latency, recording barrier calls.
    #[derive(Debug, Default)]
    struct FixedMem {
        latency: u64,
        barriers: u64,
        accesses: u64,
    }

    impl MemorySystem for FixedMem {
        fn access(&mut self, _core: usize, access: MemAccess, now: Cycle) -> AccessOutcome {
            self.accesses += 1;
            let blocking = match access.kind {
                AccessKind::Read | AccessKind::ReadStable => Blocking::Window,
                AccessKind::Write => Blocking::None,
                AccessKind::Atomic(_) => Blocking::Full,
            };
            AccessOutcome {
                completion: now + self.latency,
                blocking,
            }
        }
        fn barrier(&mut self, _now: Cycle) {
            self.barriers += 1;
        }
    }

    fn cfg() -> MachineConfig {
        let mut c = MachineConfig::mini_baseline();
        c.core.max_outstanding = 2;
        c.core.issue_cost_x100 = 100; // 1 cycle per op: simplifies arithmetic
        c
    }

    #[test]
    fn compute_only_trace_takes_compute_time() {
        let mut mem = FixedMem {
            latency: 10,
            ..Default::default()
        };
        let r = run(vec![vec![CoreOp::compute(50)]], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 50);
        assert_eq!(r.per_core[0].compute_cycles, 50);
        assert_eq!(r.per_core[0].memory_stall_cycles, 0);
    }

    #[test]
    fn loads_overlap_within_window() {
        let mut mem = FixedMem {
            latency: 100,
            ..Default::default()
        };
        // Two loads, window = 2: both in flight; drain at end.
        let t = vec![
            CoreOp::Access(MemAccess::read(0, 8)),
            CoreOp::Access(MemAccess::read(64, 8)),
        ];
        let r = run(vec![t], &mut mem, &cfg());
        // Issue at 1 and 2; completions 101, 102; drain-all to 102. The
        // wait happens at trace end, so it lands in the drain bucket, not
        // the (overlappable) window-stall bucket.
        assert_eq!(r.total_cycles, 102);
        assert_eq!(r.per_core[0].memory_stall_cycles, 0);
        assert_eq!(r.per_core[0].drain_cycles, 100);
    }

    #[test]
    fn window_limit_serialises_excess_loads() {
        let mut mem = FixedMem {
            latency: 100,
            ..Default::default()
        };
        let t: Trace = (0..4)
            .map(|i| CoreOp::Access(MemAccess::read(i * 64, 8)))
            .collect();
        let r = run(vec![t], &mut mem, &cfg());
        // Window of 2: loads 3 and 4 wait for 1 and 2 → ~2 serialised rounds.
        assert!(r.total_cycles > 200, "got {}", r.total_cycles);
        assert!(r.total_cycles < 250);
    }

    #[test]
    fn atomics_fully_stall() {
        let mut mem = FixedMem {
            latency: 100,
            ..Default::default()
        };
        let t = vec![
            CoreOp::Access(MemAccess::atomic(0, 8, AtomicKind::FpAdd)),
            CoreOp::Access(MemAccess::atomic(0, 8, AtomicKind::FpAdd)),
        ];
        let r = run(vec![t], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 202);
        assert_eq!(r.per_core[0].atomic_stall_cycles, 200);
        assert!(r.memory_bound_fraction() > 0.9);
    }

    #[test]
    fn stores_do_not_stall() {
        let mut mem = FixedMem {
            latency: 1000,
            ..Default::default()
        };
        let t: Trace = (0..10)
            .map(|i| CoreOp::Access(MemAccess::write(i * 64, 8)))
            .collect();
        let r = run(vec![t], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 10); // issue cost only
    }

    #[test]
    fn barrier_synchronises_cores() {
        let mut mem = FixedMem {
            latency: 0,
            ..Default::default()
        };
        let fast = vec![CoreOp::compute(10), CoreOp::Barrier, CoreOp::compute(5)];
        let slow = vec![CoreOp::compute(100), CoreOp::Barrier, CoreOp::compute(5)];
        let r = run(vec![fast, slow], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 105);
        assert_eq!(mem.barriers, 1);
        assert_eq!(r.per_core[0].barrier_cycles, 90);
        assert_eq!(r.per_core[1].barrier_cycles, 0);
    }

    #[test]
    fn finished_cores_do_not_block_barriers() {
        let mut mem = FixedMem::default();
        let with_barrier = vec![CoreOp::compute(10), CoreOp::Barrier, CoreOp::compute(1)];
        let no_barrier = vec![CoreOp::compute(1)];
        let r = run(vec![with_barrier, no_barrier], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 11);
    }

    #[test]
    fn empty_traces_finish_at_zero() {
        let mut mem = FixedMem::default();
        let r = run(vec![vec![], vec![]], &mut mem, &cfg());
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "traces for")]
    fn too_many_traces_panics() {
        let mut mem = FixedMem::default();
        let traces = vec![vec![]; 17];
        run(traces, &mut mem, &cfg());
    }

    #[test]
    fn every_cycle_is_attributed_to_exactly_one_bucket() {
        let mut mem = FixedMem {
            latency: 100,
            ..Default::default()
        };
        // A trace exercising all five buckets: compute, window stalls,
        // atomic holds, a barrier (with drain), and a trace-end drain.
        let busy: Trace = vec![
            CoreOp::compute(20),
            CoreOp::Access(MemAccess::read(0, 8)),
            CoreOp::Access(MemAccess::read(64, 8)),
            CoreOp::Access(MemAccess::read(128, 8)),
            CoreOp::Access(MemAccess::atomic(0, 8, AtomicKind::FpAdd)),
            CoreOp::Barrier,
            CoreOp::Access(MemAccess::read(192, 8)),
        ];
        let idle: Trace = vec![CoreOp::compute(1), CoreOp::Barrier];
        let r = run(vec![busy, idle], &mut mem, &cfg());
        for c in &r.per_core {
            assert_eq!(c.attributed_cycles(), c.finish_time, "{c:?}");
        }
        assert!(r.per_core[0].drain_cycles > 0);
        assert!(r.per_core[1].barrier_cycles > 0);
    }

    /// A synthetic workload mixing every op kind across unevenly sized
    /// per-core traces (some spanning multiple staging chunks).
    fn mixed_traces(n_cores: usize, len: usize) -> Vec<Trace> {
        (0..n_cores)
            .map(|c| {
                let mut t = Trace::new();
                for i in 0..(len * (c + 1)) {
                    let addr = ((c * 131 + i * 17) % 4096) as u64 * 64;
                    t.push(match i % 5 {
                        0 => CoreOp::compute((i % 7) as u32 + 1),
                        1 => CoreOp::Access(MemAccess::read(addr, 8)),
                        2 => CoreOp::Access(MemAccess::write(addr, 8)),
                        3 => CoreOp::Access(MemAccess::atomic(addr, 8, AtomicKind::FpAdd)),
                        _ => {
                            if i % 25 == 4 {
                                CoreOp::Barrier
                            } else {
                                CoreOp::Access(MemAccess::read(addr + 8, 4))
                            }
                        }
                    });
                }
                t
            })
            .collect()
    }

    fn staged_report(traces: Vec<Trace>, workers: usize) -> (EngineReport, u64, u64) {
        let mut mem = FixedMem {
            latency: 9,
            ..Default::default()
        };
        let streams: Vec<_> = traces.into_iter().map(|t| t.into_iter()).collect();
        let r = run_staged(streams, &mut mem, &cfg(), workers);
        (r, mem.accesses, mem.barriers)
    }

    #[test]
    fn staged_replay_is_bit_identical_to_serial() {
        let traces = mixed_traces(4, 3 * STAGE_CHUNK / 2);
        let mut mem = FixedMem {
            latency: 9,
            ..Default::default()
        };
        let serial = run(traces.clone(), &mut mem, &cfg());
        let serial_accesses = mem.accesses;
        let serial_barriers = mem.barriers;
        for workers in [1, 2, 3, 4, 7] {
            let (staged, accesses, barriers) = staged_report(traces.clone(), workers);
            assert_eq!(staged, serial, "workers={workers}");
            assert_eq!(accesses, serial_accesses, "workers={workers}");
            assert_eq!(barriers, serial_barriers, "workers={workers}");
        }
    }

    #[test]
    fn staged_handles_empty_and_chunk_boundary_streams() {
        // Streams of length 0, exactly one chunk, and one-past-a-chunk all
        // terminate (the short-chunk end marker covers each case).
        let traces: Vec<Trace> = vec![
            Vec::new(),
            vec![CoreOp::compute(1); STAGE_CHUNK],
            vec![CoreOp::compute(1); STAGE_CHUNK + 1],
        ];
        let mut mem = FixedMem::default();
        let serial = run(traces.clone(), &mut mem, &cfg());
        let (staged, _, _) = staged_report(traces, 2);
        assert_eq!(staged, serial);
    }

    #[test]
    fn staged_with_more_workers_than_cores_clamps() {
        let traces = mixed_traces(2, 40);
        let mut mem = FixedMem {
            latency: 9,
            ..Default::default()
        };
        let serial = run(traces.clone(), &mut mem, &cfg());
        let (staged, _, _) = staged_report(traces, 64);
        assert_eq!(staged, serial);
    }

    #[test]
    fn cores_advance_in_global_time_order() {
        // With a shared fixed-latency memory this is hard to observe
        // directly; instead check all traces complete and op counts add up.
        let mut mem = FixedMem {
            latency: 7,
            ..Default::default()
        };
        let traces: Vec<Trace> = (0..4)
            .map(|c| {
                (0..50)
                    .map(|i| CoreOp::Access(MemAccess::read((c * 64 + i) * 64, 8)))
                    .collect()
            })
            .collect();
        let r = run(traces, &mut mem, &cfg());
        assert_eq!(mem.accesses, 200);
        assert_eq!(r.per_core.iter().map(|c| c.ops).sum::<u64>(), 200);
    }
}
