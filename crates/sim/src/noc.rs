//! Crossbar interconnect model.
//!
//! The paper's setup (Table III) is a 16-port crossbar with a 128-bit bus
//! and an average remote-access latency of ≈17 cycles. Each packet pays the
//! switch traversal plus its serialisation time
//! (`ceil(bytes / bytes_per_cycle)`), and every byte (payload + header) is
//! counted — this is the quantity behind Fig. 17 ("OMEGA reduces on-chip
//! traffic by over 3x"), where OMEGA wins by moving 1–8-byte words instead
//! of 64-byte lines.
//!
//! Port occupancy is tracked statistically (busy cycles per port) rather
//! than as hard reservations: the replay engine executes cores with
//! bounded time divergence, and hard reservations would charge a lagging
//! core the full divergence window as phantom queueing. The
//! [`NocStats::contention_cycles`] counter reports genuine oversubscription
//! pressure — the amount by which packet arrivals outpace each port's
//! drain rate within the run.
//!
//! In the parallel-replay discipline (see `engine`'s module docs) every
//! port ledger here — busy cycles, last arrival, backlog, the
//! `accounted_packets` conservation counter — is **globally-ordered
//! contention state**: each `send` reads and updates it with zero
//! lookahead, so the crossbar must only ever be driven by the single
//! timing thread, never sharded across staging workers.

use crate::audit::AuditReport;
use crate::config::NocConfig;
use crate::obs::IntervalRecorder;
use crate::stats::NocStats;
use crate::telemetry::LatencyHistogram;
use crate::Cycle;

/// A crossbar with per-packet serialisation and per-port occupancy
/// accounting.
///
/// # Example
///
/// ```
/// use omega_sim::noc::Crossbar;
/// use omega_sim::NocConfig;
///
/// let cfg = NocConfig { latency: 8, bytes_per_cycle: 16, header_bytes: 8 };
/// let mut xbar = Crossbar::new(cfg, 16);
/// // A word-sized scratchpad packet: 8 B payload + 8 B header → 1 cycle
/// // of serialisation after the 8-cycle switch traversal.
/// let arrival = xbar.send(3, 8, 100);
/// assert_eq!(arrival, 109);
/// assert_eq!(xbar.stats().bytes, 16);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: NocConfig,
    port_busy_cycles: Vec<u64>,
    port_last_arrival: Vec<Cycle>,
    port_backlog: Vec<u64>,
    stats: NocStats,
    // Conservation ledger: packets that paid serialisation through
    // `account()`. The auditor cross-checks it against `stats.packets`
    // to catch legs that bump traffic counters without occupying a port.
    accounted_packets: u64,
    // Per-packet contention histogram; None (one branch per packet)
    // unless telemetry is enabled.
    contention_histogram: Option<Box<LatencyHistogram>>,
    // Simulated per-port contention bursts for the obs timeline; None
    // (one branch per packet) unless a trace session is active at
    // construction.
    contention_bursts: Option<Box<IntervalRecorder>>,
}

impl Crossbar {
    /// Creates a crossbar with `ports` destination ports.
    pub fn new(cfg: NocConfig, ports: usize) -> Self {
        Crossbar {
            cfg,
            port_busy_cycles: vec![0; ports],
            port_last_arrival: vec![0; ports],
            port_backlog: vec![0; ports],
            stats: NocStats::default(),
            accounted_packets: 0,
            contention_histogram: None,
            contention_bursts: IntervalRecorder::if_active("noc.port", ports),
        }
    }

    /// Flushes recorded simulated contention bursts into the obs registry.
    /// No-op (one branch) when no trace session was active at build time.
    pub fn flush_obs(&mut self) {
        if let Some(b) = self.contention_bursts.as_deref_mut() {
            b.flush();
        }
    }

    /// Starts recording per-packet port contention (queueing beyond the
    /// packet's own serialisation; zero for uncontended packets) into a
    /// histogram.
    pub fn enable_telemetry(&mut self) {
        self.contention_histogram = Some(Box::default());
    }

    /// Takes the contention histogram collected since
    /// [`Self::enable_telemetry`], leaving telemetry disabled.
    pub fn take_contention_histogram(&mut self) -> Option<LatencyHistogram> {
        self.contention_histogram.take().map(|h| *h)
    }

    fn serialisation(&self, payload_bytes: u32) -> u64 {
        let bytes = payload_bytes + self.cfg.header_bytes;
        (bytes as u64)
            .div_ceil(self.cfg.bytes_per_cycle as u64)
            .max(1)
    }

    /// Accounts one packet to `dst` arriving at `at`: tracks the port's
    /// drained backlog so sustained oversubscription shows up as
    /// contention, without hard cross-core reservations.
    fn account(&mut self, dst: usize, ser: u64, at: Cycle) {
        let last = self.port_last_arrival[dst];
        let contention = if at < last {
            // A lagging sender lands in the port's past: the latency model
            // gives it the port immediately (see
            // `lagging_sender_is_not_charged_phantom_queueing`), so the
            // stats must not charge it the outstanding future backlog
            // either, and its serialisation is already drained by `last`.
            0
        } else {
            // Drain the backlog by the time elapsed since the last
            // arrival; whatever survives is genuine queueing ahead of
            // this packet.
            let drained = self.port_backlog[dst].saturating_sub(at - last);
            self.port_last_arrival[dst] = at;
            self.port_backlog[dst] = drained + ser;
            drained
        };
        self.stats.contention_cycles += contention;
        if let Some(h) = self.contention_histogram.as_deref_mut() {
            h.record(contention);
        }
        if let Some(b) = self.contention_bursts.as_deref_mut() {
            if contention > 0 {
                // The packet queues from its arrival until the backlog
                // ahead of it drains; adjacent bursts coalesce.
                b.record(dst, at, at + contention);
            }
        }
        self.port_busy_cycles[dst] += ser;
        self.accounted_packets += 1;
    }

    /// Sends `payload_bytes` to `dst`; returns the arrival cycle
    /// (`now + switch latency + serialisation`).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: usize, payload_bytes: u32, now: Cycle) -> Cycle {
        let ser = self.serialisation(payload_bytes);
        let arrive = now + self.cfg.latency as u64 + ser;
        self.account(dst, ser, arrive);
        self.stats.packets += 1;
        self.stats.bytes += (payload_bytes + self.cfg.header_bytes) as u64;
        debug_assert_eq!(
            self.accounted_packets, self.stats.packets,
            "every counted packet must pay serialisation through account()"
        );
        arrive
    }

    /// A round trip: a small request to `dst` followed by a
    /// `response_bytes` reply. Returns the cycle the response arrives back.
    ///
    /// Both legs go through [`Self::send`]: the response serialises on the
    /// crossbar like any other packet, so busy cycles, contention, and the
    /// telemetry histogram stay consistent with `packets`/`bytes`. (The
    /// reply is charged to `dst`'s port pair — the crossbar does not track
    /// the requester's port.)
    pub fn round_trip(
        &mut self,
        dst: usize,
        request_bytes: u32,
        response_bytes: u32,
        now: Cycle,
    ) -> Cycle {
        let req_done = self.send(dst, request_bytes, now);
        self.send(dst, response_bytes, req_done)
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Busy cycles accumulated at `port`.
    pub fn port_busy(&self, port: usize) -> u64 {
        self.port_busy_cycles[port]
    }

    /// Number of destination ports.
    pub fn ports(&self) -> usize {
        self.port_busy_cycles.len()
    }

    /// Checks the crossbar's flow-conservation invariants into `out`:
    /// every counted packet went through `account()`, per-port busy cycles
    /// bound the byte count under the configured bandwidth, and (when
    /// telemetry is live) the contention histogram has one sample per
    /// packet summing to `contention_cycles`.
    pub fn audit_into(&self, out: &mut AuditReport) {
        out.check(
            "noc",
            "accounted_packets == packets",
            self.accounted_packets == self.stats.packets,
            || {
                format!(
                    "{} packets paid serialisation, {} counted",
                    self.accounted_packets, self.stats.packets
                )
            },
        );
        let busy: u64 = self.port_busy_cycles.iter().sum();
        let bpc = self.cfg.bytes_per_cycle as u64;
        // Σ ceil(bytes_i/bpc) ≥ ceil(Σ bytes_i / bpc): missing legs (bytes
        // counted without serialisation) break the lower bound.
        out.check(
            "noc",
            "port busy cycles cover the byte count",
            busy >= self.stats.bytes.div_ceil(bpc),
            || {
                format!(
                    "busy {} < ceil({} B / {} B/cyc)",
                    busy, self.stats.bytes, bpc
                )
            },
        );
        // Each packet rounds up by < 1 cycle (plus the 1-cycle floor), so
        // busy can exceed bytes/bpc by at most one cycle per packet.
        out.check(
            "noc",
            "port busy cycles bounded by bytes + one cycle per packet",
            busy <= self.stats.bytes / bpc + self.stats.packets,
            || {
                format!(
                    "busy {} > {} B / {} B/cyc + {} packets",
                    busy, self.stats.bytes, bpc, self.stats.packets
                )
            },
        );
        if let Some(h) = self.contention_histogram.as_deref() {
            out.check(
                "noc",
                "contention histogram has one sample per packet",
                h.count() == self.stats.packets,
                || format!("{} samples, {} packets", h.count(), self.stats.packets),
            );
            out.check(
                "noc",
                "contention histogram sums to contention_cycles",
                h.sum() == self.stats.contention_cycles as u128,
                || {
                    format!(
                        "histogram sum {}, counter {}",
                        h.sum(),
                        self.stats.contention_cycles
                    )
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig {
            latency: 8,
            bytes_per_cycle: 16,
            header_bytes: 8,
        }
    }

    #[test]
    fn latency_is_switch_plus_serialisation() {
        let mut x = Crossbar::new(cfg(), 4);
        // 56B payload + 8B header = 64B → 4 cycles serialisation.
        let t = x.send(0, 56, 100);
        assert_eq!(t, 100 + 8 + 4);
    }

    #[test]
    fn bytes_count_headers() {
        let mut x = Crossbar::new(cfg(), 4);
        x.send(0, 8, 0);
        assert_eq!(x.stats().bytes, 16);
        assert_eq!(x.stats().packets, 1);
    }

    #[test]
    fn word_packets_cost_less_than_line_packets() {
        let mut a = Crossbar::new(cfg(), 1);
        let mut b = Crossbar::new(cfg(), 1);
        let t_word = a.round_trip(0, 8, 8, 0);
        let t_line = b.round_trip(0, 8, 64, 0);
        assert!(t_word < t_line);
        assert!(a.stats().bytes < b.stats().bytes);
    }

    #[test]
    fn round_trip_counts_two_packets() {
        let mut x = Crossbar::new(cfg(), 2);
        x.enable_telemetry();
        let t = x.round_trip(1, 8, 64, 10);
        assert_eq!(x.stats().packets, 2);
        // 8+8=16B req → 1 cycle; 64+8=72 → 5 cycles resp.
        assert_eq!(t, 10 + 8 + 1 + 8 + 5);
        // The response leg pays serialisation like the request: the port
        // is busy for both legs and the histogram sees both packets.
        assert_eq!(x.port_busy(1), 1 + 5);
        assert_eq!(x.stats().bytes, 16 + 72);
        let h = x.take_contention_histogram().unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn port_busy_accumulates_per_destination() {
        let mut x = Crossbar::new(cfg(), 2);
        x.send(0, 56, 0);
        x.send(0, 56, 100);
        x.send(1, 8, 100);
        assert_eq!(x.port_busy(0), 8);
        assert_eq!(x.port_busy(1), 1);
    }

    #[test]
    fn sustained_oversubscription_registers_contention() {
        let mut x = Crossbar::new(cfg(), 1);
        // 64-byte packets every cycle need 4 cycles each: backlog grows.
        for t in 0..100 {
            x.send(0, 56, t);
        }
        assert!(x.stats().contention_cycles > 0);
        // A trickle does not.
        let mut y = Crossbar::new(cfg(), 1);
        for t in 0..100 {
            y.send(0, 56, t * 50);
        }
        assert_eq!(y.stats().contention_cycles, 0);
    }

    #[test]
    fn contention_histogram_sums_to_contention_cycles() {
        let mut x = Crossbar::new(cfg(), 1);
        x.enable_telemetry();
        for t in 0..100 {
            x.send(0, 56, t);
        }
        let s = x.stats();
        let h = x.take_contention_histogram().unwrap();
        // One sample per accounted packet, zeros included.
        assert_eq!(h.count(), s.packets);
        assert_eq!(h.sum(), s.contention_cycles as u128);
        assert!(x.take_contention_histogram().is_none());
    }

    #[test]
    fn lagging_sender_is_not_charged_phantom_queueing() {
        let mut x = Crossbar::new(cfg(), 1);
        // A core far ahead in time reserves nothing for the laggard.
        x.send(0, 56, 1_000_000);
        let t = x.send(0, 56, 10);
        assert_eq!(t, 10 + 8 + 4);
    }

    #[test]
    fn lagging_sender_stats_match_its_latency() {
        let mut x = Crossbar::new(cfg(), 1);
        x.enable_telemetry();
        // Pile up a genuine backlog far in the future: ten 4-cycle packets
        // arriving on the same cycle.
        for _ in 0..10 {
            x.send(0, 56, 1_000_000);
        }
        let ahead = x.stats().contention_cycles;
        assert!(ahead > 0, "the pile-up itself must register contention");
        // The laggard's latency is uncontended, so its stats must be too.
        let t = x.send(0, 56, 10);
        assert_eq!(t, 10 + 8 + 4);
        assert_eq!(
            x.stats().contention_cycles,
            ahead,
            "a lagging sender must not be charged the future backlog"
        );
        // Still one histogram sample (a zero) per packet.
        let s = x.stats();
        let h = x.take_contention_histogram().unwrap();
        assert_eq!(h.count(), s.packets);
        assert_eq!(h.sum(), s.contention_cycles as u128);
    }

    #[test]
    fn audit_passes_on_mixed_traffic() {
        let mut x = Crossbar::new(cfg(), 4);
        x.enable_telemetry();
        for t in 0..50 {
            x.send((t % 4) as usize, 56, t);
            x.round_trip(((t + 1) % 4) as usize, 8, 64, t);
        }
        let mut report = AuditReport::default();
        x.audit_into(&mut report);
        assert!(report.is_clean(), "{report}");
    }
}
