//! Canonical configuration fingerprinting for the persistent result store.
//!
//! The experiment store in `omega-bench` keys each report by a hash over
//! everything that determines the simulation outcome: the dataset and its
//! scale, the algorithm, the complete [`crate::MachineConfig`] (plus the
//! OMEGA extension living in `omega-core`), and the framework execution
//! parameters. Any field change must change the key — a stale entry served
//! for a different configuration would silently corrupt figures — so
//! hashing goes through an explicit, canonical serialisation rather than
//! `#[derive(Hash)]`:
//!
//! * every scalar is written in a fixed width and order (little-endian),
//! * strings are length-prefixed,
//! * enum variants and `Option`s write an explicit discriminant byte,
//! * floats are hashed by their IEEE-754 bit pattern.
//!
//! The hash itself is 64-bit FNV-1a: tiny, dependency-free, and stable
//! across platforms and Rust versions (unlike `DefaultHasher`, whose
//! algorithm is explicitly unspecified). FNV is not collision-resistant
//! against adversaries, but store keys come from a handful of trusted
//! configuration structs, not attacker-controlled input.

/// Incremental 64-bit FNV-1a hasher over a canonical byte stream.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Hashes one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    /// Hashes a raw byte slice (no length prefix; use [`Fnv64::write_str`]
    /// or [`Fnv64::write_bytes`] for variable-length data).
    #[inline]
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Hashes a variable-length byte slice, length-prefixed so adjacent
    /// fields cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Hashes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Hashes a `u32` in fixed-width little-endian form.
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Hashes a `u64` in fixed-width little-endian form.
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Hashes a `usize` widened to 64 bits so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Hashes a float by its IEEE-754 bit pattern (distinguishes `-0.0`
    /// from `0.0`; deliberate, as canonicalisation must be injective).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest over everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Writes a value's complete, semantically relevant state into a canonical
/// hash stream. Implementations must cover every field that can change
/// simulation results, and must prefix enum variants with a discriminant.
pub trait Canonicalize {
    /// Feeds this value's canonical form into `h`.
    fn canonicalize(&self, h: &mut Fnv64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Reference digests for the classic FNV-1a test strings.
        let digest = |s: &str| {
            let mut h = Fnv64::new();
            h.write_raw(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn scalar_widths_are_fixed() {
        // The same numeric value hashed at different widths yields byte
        // streams of different lengths, hence different digests.
        let mut a = Fnv64::new();
        a.write_u32(7);
        let mut b = Fnv64::new();
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bit_patterns_distinguish_signed_zero() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
