//! The baseline CMP memory system of Table III: per-core private L1 data
//! caches, a shared L2 distributed into per-core banks (line-interleaved),
//! a directory-based MESI-style coherence filter, a crossbar between cores
//! and banks, and DRAM channels behind the banks.
//!
//! Coherence is modelled with *atomic transactions* (no transient states):
//! because the replay engine executes operations in global time order, each
//! access can consult and update the directory in one step, paying the
//! latency and traffic of each protocol hop it would have taken:
//!
//! * L1 read miss → request to the home bank (crossbar round trip with a
//!   64-byte response) → possibly a dirty-owner forward (extra round trip)
//!   → possibly a DRAM fill.
//! * L1 write to a Shared line → upgrade: invalidation message per sharer.
//! * Atomics → fetch-exclusive plus a per-line lock that serialises
//!   concurrent atomics to the same line and holds the issuing core
//!   (`Blocking::Full`) — the overhead OMEGA's PISC offload removes.
//!
//! The L2 is inclusive: evicting an L2 victim back-invalidates L1 copies.
//!
//! ## State classes under parallel replay
//!
//! The hierarchy's state splits into two classes with different rules in
//! the staged-replay discipline (see `engine`'s module docs):
//!
//! * **Per-core-accumulable** — the [`CoreCounters`] banks (`l1_stats`,
//!   `l2_stats`) and the per-instance [`CacheArray`]s: each index is
//!   touched only on behalf of one core or bank per event, and the public
//!   view is an order-insensitive merge ([`CoreCounters::merged`]). These
//!   could in principle live thread-locally and be summed at a barrier.
//! * **Globally-ordered contention state** — the coherence `directory`,
//!   `line_locks`, the [`Crossbar`] port ledgers, and the [`DramModel`]
//!   channel ledgers: consulted with zero lookahead and mutated by every
//!   access in causal order, so they must only ever be touched by the
//!   single timing thread. This is why parallelism lives in op *staging*
//!   (lowering), never in timing itself.

use crate::audit::{self, AuditReport};
use crate::cache::{CacheArray, LineState};
use crate::config::MachineConfig;
use crate::dram::DramModel;
use crate::mem::{AccessKind, AccessOutcome, Blocking, MemAccess, MemorySystem};
use crate::noc::Crossbar;
use crate::stats::{AtomicStats, CoreCounters, MemStats};
use crate::telemetry::{LatencyHistogram, TelemetryReport, WindowSampler};
use crate::{line_of, Cycle, LINE_BYTES};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u32,
    owner_modified: Option<u8>,
}

impl DirEntry {
    fn add_sharer(&mut self, core: usize) {
        self.sharers |= 1 << core;
    }
    fn remove_sharer(&mut self, core: usize) {
        self.sharers &= !(1 << core);
    }
    fn others(&self, core: usize) -> u32 {
        self.sharers & !(1 << core)
    }
}

/// Telemetry the hierarchy itself collects (the DRAM and NoC models own
/// their histograms). Boxed behind an `Option` so the disabled path pays
/// one branch.
#[derive(Debug)]
struct HierTelemetry {
    miss_latency: LatencyHistogram,
    lock_wait: LatencyHistogram,
    sampler: Option<WindowSampler>,
}

/// The baseline memory system. See the module docs for the protocol.
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: MachineConfig,
    l1: Vec<CacheArray>,
    l1_stats: CoreCounters,
    l2: Vec<CacheArray>,
    l2_stats: CoreCounters,
    directory: HashMap<u64, DirEntry>,
    noc: Crossbar,
    dram: DramModel,
    line_locks: HashMap<u64, Cycle>,
    atomics: AtomicStats,
    telemetry: Option<Box<HierTelemetry>>,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cfg`. Telemetry hooks (see
    /// [`crate::telemetry`]) activate when `cfg.telemetry.enabled`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.core.n_cores;
        let mut h = CacheHierarchy {
            cfg: *cfg,
            l1: (0..n).map(|_| CacheArray::new(&cfg.l1)).collect(),
            l1_stats: CoreCounters::new(n),
            l2: (0..n).map(|_| CacheArray::new(&cfg.l2)).collect(),
            l2_stats: CoreCounters::new(n),
            directory: HashMap::new(),
            noc: Crossbar::new(cfg.noc, n),
            dram: DramModel::new(cfg.dram),
            line_locks: HashMap::new(),
            atomics: AtomicStats::default(),
            telemetry: None,
        };
        if cfg.telemetry.enabled {
            h.dram.enable_telemetry();
            h.noc.enable_telemetry();
            h.telemetry = Some(Box::new(HierTelemetry {
                miss_latency: LatencyHistogram::new(),
                lock_wait: LatencyHistogram::new(),
                sampler: Some(WindowSampler::new(cfg.telemetry.window_cycles)),
            }));
        }
        h
    }

    /// Whether telemetry collection is active.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Moves the window sampler out of the hierarchy, so an outer memory
    /// system (OMEGA) can drive the windowing from *its* combined
    /// statistics — scratchpad counters included — while the hierarchy
    /// keeps collecting its histograms. Returns `None` when telemetry is
    /// disabled.
    pub fn take_sampler(&mut self) -> Option<WindowSampler> {
        self.telemetry.as_deref_mut()?.sampler.take()
    }

    /// Records one atomic's serialisation wait into the lock-wait
    /// histogram. Outer memory systems route their PISC back-pressure and
    /// per-entry serialisation waits through this, so one histogram covers
    /// lock-wait on every machine kind. No-op when telemetry is disabled.
    #[inline]
    pub fn record_lock_wait(&mut self, wait: Cycle) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.lock_wait.record(wait);
        }
    }

    /// Ticks the window sampler if `now` crossed a boundary (one compare
    /// on the common path; `stats()` is only assembled when due).
    fn sample_if_due(&mut self, now: Cycle) {
        if self
            .telemetry
            .as_ref()
            .and_then(|t| t.sampler.as_ref())
            .is_some_and(|s| s.due(now))
        {
            let cumulative = self.stats();
            if let Some(s) = self
                .telemetry
                .as_deref_mut()
                .and_then(|t| t.sampler.as_mut())
            {
                s.tick(now, &cumulative);
            }
        }
    }

    /// Merged statistics across all cores and banks.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1_stats.merged(),
            l2: self.l2_stats.merged(),
            noc: self.noc.stats(),
            dram: self.dram.stats(),
            atomics: self.atomics,
            scratchpad: Default::default(),
        }
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable access to the crossbar, so an outer memory system (OMEGA's
    /// scratchpad fabric) can share the same physical interconnect — and
    /// therefore the same bandwidth and traffic accounting — as the cache
    /// traffic.
    pub fn noc_mut(&mut self) -> &mut Crossbar {
        &mut self.noc
    }

    /// Pins a set of lines into their home L2 banks (the §IX locked-cache
    /// alternative): pinned lines are pre-loaded `Shared` and excluded from
    /// replacement. Returns how many lines were actually pinned (pinning
    /// stops short of monopolising any set).
    pub fn pin_lines<I: IntoIterator<Item = u64>>(&mut self, lines: I) -> usize {
        let mut pinned = 0;
        for line in lines {
            let line = line_of(line);
            let bank = self.cfg.l2_bank_of(line);
            if self.l2[bank].pin(line) {
                pinned += 1;
            }
        }
        pinned
    }

    /// Mutable access to the DRAM model, for memory-side extensions
    /// (word-granularity cold-vertex access and PIM offload, §IX of the
    /// paper) that bypass the caches but share the same channels.
    pub fn dram_mut(&mut self) -> &mut DramModel {
        &mut self.dram
    }

    /// Audits the component-internal ledgers (crossbar ports, DRAM
    /// channels) without the hierarchy-level cross-checks. An outer memory
    /// system that shares these components (OMEGA's scratchpad fabric)
    /// calls this and then runs [`audit::check_mem_stats`] over its *own*
    /// merged stats — the inner hierarchy's stats alone would not balance
    /// against traffic the outer machine injected directly.
    pub fn audit_components(&self, out: &mut AuditReport) {
        self.noc.audit_into(out);
        self.dram.audit_into(out);
    }

    fn writeback_l1_victim(&mut self, core: usize, line: u64, now: Cycle) {
        // Dirty L1 victim: transfer the line to its home bank.
        let bank = self.cfg.l2_bank_of(line);
        if bank != core {
            self.noc.send(bank, LINE_BYTES as u32, now);
        }
        self.l1_stats.writebacks[core] += 1;
        self.l2[bank].set_state(line, LineState::Modified);
        if let Some(e) = self.directory.get_mut(&line) {
            e.owner_modified = None;
            e.remove_sharer(core);
        }
    }

    /// Invalidate every other sharer of `line`; returns the number
    /// invalidated. Counts one control packet per invalidation.
    fn invalidate_others(&mut self, core: usize, line: u64, now: Cycle) -> u32 {
        let Some(entry) = self.directory.get(&line).copied() else {
            return 0;
        };
        let mut count = 0;
        for other in 0..self.cfg.core.n_cores {
            if other != core && (entry.sharers >> other) & 1 == 1 {
                if self.l1[other].invalidate(line).is_some() {
                    self.l1_stats.invalidations[other] += 1;
                }
                self.noc.send(other, 0, now); // header-only invalidation packet
                count += 1;
            }
        }
        let e = self.directory.entry(line).or_default();
        e.sharers &= 1 << core;
        e.owner_modified = None;
        count
    }

    /// Serves a miss at the L2 bank. Returns the cycle the line is ready at
    /// the bank, after any dirty-owner forward or DRAM fill.
    fn bank_fill(&mut self, core: usize, line: u64, want_exclusive: bool, mut now: Cycle) -> Cycle {
        let bank = self.cfg.l2_bank_of(line);

        // Dirty copy in another L1? Forward it (extra hop owner → bank).
        let owner = self
            .directory
            .get(&line)
            .and_then(|e| e.owner_modified)
            .map(|o| o as usize);
        if let Some(o) = owner {
            if o != core {
                now = self.noc.round_trip(o, 8, LINE_BYTES as u32, now);
                self.l1[o].set_state(line, LineState::Shared);
                self.l2[bank].insert(line, LineState::Modified);
                if let Some(e) = self.directory.get_mut(&line) {
                    e.owner_modified = None;
                }
                self.l2_stats.hits[bank] += 1;
                if want_exclusive {
                    self.invalidate_others(core, line, now);
                }
                return now;
            }
        }

        // A read joining existing sharers downgrades any Exclusive holder
        // to Shared (the snoop that supplies the sharing response).
        if !want_exclusive {
            if let Some(entry) = self.directory.get(&line).copied() {
                for other in 0..self.cfg.core.n_cores {
                    if other != core
                        && (entry.sharers >> other) & 1 == 1
                        && self.l1[other].peek(line) == Some(LineState::Exclusive)
                    {
                        self.l1[other].set_state(line, LineState::Shared);
                    }
                }
            }
        }
        if self.l2[bank].lookup(line).is_some() {
            self.l2_stats.hits[bank] += 1;
            now += self.cfg.l2.latency as u64;
        } else {
            self.l2_stats.misses[bank] += 1;
            now += self.cfg.l2.latency as u64;
            now = self.dram.access_line(line, false, now);
            if let Some(ev) = self.l2[bank].insert(line, LineState::Shared) {
                // Inclusive L2: back-invalidate L1 copies of the victim; a
                // recalled Modified copy makes the victim dirty even if the
                // L2 line state itself was clean.
                let recalled_dirty = self.back_invalidate(ev.line, now);
                if ev.state.dirty() || recalled_dirty {
                    self.l2_stats.writebacks[bank] += 1;
                    self.dram.access_line(ev.line, true, now);
                }
            }
        }
        if want_exclusive {
            self.invalidate_others(core, line, now);
        }
        now
    }

    /// Invalidates every L1 copy of an L2 victim (inclusion). Returns
    /// `true` if a Modified copy was recalled, in which case the victim's
    /// data is dirty regardless of the L2 line state and the caller must
    /// write it back.
    fn back_invalidate(&mut self, line: u64, now: Cycle) -> bool {
        let mut recalled_dirty = false;
        if let Some(entry) = self.directory.remove(&line) {
            for other in 0..self.cfg.core.n_cores {
                if (entry.sharers >> other) & 1 == 1 {
                    if let Some(state) = self.l1[other].invalidate(line) {
                        self.l1_stats.invalidations[other] += 1;
                        if state.dirty() {
                            // Recall the dirty data alongside the probe.
                            self.noc
                                .send(self.cfg.l2_bank_of(line), LINE_BYTES as u32, now);
                            recalled_dirty = true;
                        }
                    }
                    self.noc.send(other, 0, now);
                }
            }
        }
        recalled_dirty
    }

    fn fill_l1(&mut self, core: usize, line: u64, state: LineState, now: Cycle) {
        if let Some(ev) = self.l1[core].insert(line, state) {
            if ev.state.dirty() {
                self.writeback_l1_victim(core, ev.line, now);
            } else if let Some(e) = self.directory.get_mut(&ev.line) {
                e.remove_sharer(core);
            }
        }
        let e = self.directory.entry(line).or_default();
        e.add_sharer(core);
        e.owner_modified = if state == LineState::Modified {
            Some(core as u8)
        } else {
            None
        };
    }

    /// Handles one read/write/atomic; shared by `access`.
    fn do_access(&mut self, core: usize, access: MemAccess, now: Cycle) -> Cycle {
        let line = line_of(access.addr);
        let bank = self.cfg.l2_bank_of(line);
        let write = !matches!(access.kind, AccessKind::Read | AccessKind::ReadStable);
        let mut t = now + self.cfg.l1.latency as u64;

        match self.l1[core].lookup(line) {
            Some(state) if !write || state.writable() => {
                self.l1_stats.hits[core] += 1;
                if write {
                    self.l1[core].set_state(line, LineState::Modified);
                    let e = self.directory.entry(line).or_default();
                    e.add_sharer(core);
                    e.owner_modified = Some(core as u8);
                }
                t
            }
            Some(_shared_needs_upgrade) => {
                // Write to a Shared line: upgrade through the home bank.
                self.l1_stats.hits[core] += 1;
                t = if bank == core {
                    t + self.cfg.l2.latency as u64
                } else {
                    self.noc.round_trip(bank, 8, 8, t)
                };
                self.invalidate_others(core, line, t);
                self.l1[core].set_state(line, LineState::Modified);
                let e = self.directory.entry(line).or_default();
                e.add_sharer(core);
                e.owner_modified = Some(core as u8);
                t
            }
            None => {
                self.l1_stats.misses[core] += 1;
                // Request to the home bank.
                let at_bank = if bank == core {
                    t
                } else {
                    // Request packet; the data response is charged after the
                    // bank produces the line.
                    self.noc.send(bank, 8, t)
                };
                let ready = self.bank_fill(core, line, write, at_bank);
                let done = if bank == core {
                    ready
                } else {
                    // 64-byte line travels back to the core.
                    self.noc.send(core, LINE_BYTES as u32, ready)
                };
                let state = if write {
                    LineState::Modified
                } else if self.directory.get(&line).map_or(0, |e| e.others(core)) != 0 {
                    LineState::Shared
                } else {
                    LineState::Exclusive
                };
                self.fill_l1(core, line, state, done);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    // End-to-end L1-miss service time (issue → line at core).
                    t.miss_latency.record(done.saturating_sub(now));
                }
                debug_assert!(done >= now, "a miss must not complete before it was issued");
                done
            }
        }
    }
}

impl MemorySystem for CacheHierarchy {
    fn access(&mut self, core: usize, access: MemAccess, now: Cycle) -> AccessOutcome {
        self.sample_if_due(now);
        match access.kind {
            AccessKind::Read | AccessKind::ReadStable => {
                let completion = self.do_access(core, access, now);
                AccessOutcome {
                    completion,
                    blocking: Blocking::Window,
                }
            }
            AccessKind::Write => {
                let completion = self.do_access(core, access, now);
                // Stores retire through a store buffer; the core does not wait.
                AccessOutcome {
                    completion,
                    blocking: Blocking::None,
                }
            }
            AccessKind::Atomic(_) => {
                let line = line_of(access.addr);
                // Serialise behind any atomic in flight on the same line.
                let lock_free = self.line_locks.get(&line).copied().unwrap_or(0);
                let start = now.max(lock_free);
                self.atomics.lock_wait_cycles += start - now;
                self.record_lock_wait(start - now);
                let done = self.do_access(core, access, start) + self.cfg.atomic_overhead as u64;
                // The next core's atomic may begin once the line hands off,
                // well before this core's pipeline releases.
                self.line_locks
                    .insert(line, start + self.cfg.atomic_handoff as u64);
                self.atomics.executed += 1;
                AccessOutcome {
                    completion: done,
                    blocking: Blocking::Full,
                }
            }
        }
    }

    fn finish(&mut self, now: Cycle) {
        // Hand any simulated obs intervals (DRAM busy windows, NoC
        // contention bursts) to the global registry; one branch each when
        // no trace session was active. OMEGA and the locked-cache machine
        // both route their `finish` through here, so this covers every
        // machine kind.
        self.dram.flush_obs();
        self.noc.flush_obs();
        if self.telemetry.as_ref().is_some_and(|t| t.sampler.is_some()) {
            let cumulative = self.stats();
            if let Some(s) = self
                .telemetry
                .as_deref_mut()
                .and_then(|t| t.sampler.as_mut())
            {
                s.flush(now, &cumulative);
            }
        }
    }

    fn audit_into(&self, out: &mut AuditReport) {
        self.audit_components(out);
        audit::check_mem_stats(&self.stats(), out);
    }

    fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let t = *self.telemetry.take()?;
        Some(TelemetryReport {
            window_cycles: self.cfg.telemetry.window_cycles,
            windows: t
                .sampler
                .map(WindowSampler::into_samples)
                .unwrap_or_default(),
            dram_queue: self.dram.take_queue_histogram().unwrap_or_default(),
            noc_contention: self.noc.take_contention_histogram().unwrap_or_default(),
            miss_latency: t.miss_latency,
            lock_wait: t.lock_wait,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AtomicKind;

    fn mini() -> (MachineConfig, CacheHierarchy) {
        let cfg = MachineConfig::mini_baseline();
        let h = CacheHierarchy::new(&cfg);
        (cfg, h)
    }

    #[test]
    fn cold_read_misses_both_levels_and_reaches_dram() {
        let (cfg, mut h) = mini();
        let out = h.access(0, MemAccess::read(0x4000, 8), 0);
        assert!(out.completion > cfg.dram.latency as u64);
        let s = h.stats();
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.dram.reads, 1);
    }

    #[test]
    fn second_read_hits_l1() {
        let (_, mut h) = mini();
        h.access(0, MemAccess::read(0x4000, 8), 0);
        let t0 = 1000;
        let out = h.access(0, MemAccess::read(0x4008, 8), t0);
        assert_eq!(out.completion, t0 + h.config().l1.latency as u64);
        assert_eq!(h.stats().l1.hits, 1);
    }

    #[test]
    fn sharer_read_then_remote_write_invalidates() {
        let (_, mut h) = mini();
        h.access(0, MemAccess::read(0x4000, 8), 0);
        h.access(1, MemAccess::read(0x4000, 8), 500);
        // Core 2 writes: both sharers must be invalidated.
        h.access(2, MemAccess::write(0x4000, 8), 1000);
        let s = h.stats();
        assert_eq!(s.l1.invalidations, 2);
        // Core 0 must now miss again.
        h.access(0, MemAccess::read(0x4000, 8), 2000);
        assert_eq!(h.stats().l1.misses, 4); // 3 cold + 1 post-invalidation
    }

    #[test]
    fn dirty_remote_line_is_forwarded() {
        let (_, mut h) = mini();
        h.access(0, MemAccess::write(0x4000, 8), 0);
        let before_dram_reads = h.stats().dram.reads;
        h.access(1, MemAccess::read(0x4000, 8), 1000);
        // The second access must have been served by owner forwarding, not DRAM.
        assert_eq!(h.stats().dram.reads, before_dram_reads);
        assert_eq!(h.stats().l2.hits, 1);
    }

    #[test]
    fn atomics_to_same_line_serialise() {
        let (_, mut h) = mini();
        // Warm the line.
        h.access(0, MemAccess::read(0x4000, 8), 0);
        let a = h.access(0, MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd), 1000);
        let b = h.access(1, MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd), 1000);
        assert!(
            b.completion > a.completion,
            "second atomic must wait for the lock"
        );
        assert!(h.stats().atomics.lock_wait_cycles > 0);
        assert_eq!(h.stats().atomics.executed, 2);
    }

    #[test]
    fn atomics_block_the_core() {
        let (_, mut h) = mini();
        let out = h.access(0, MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd), 0);
        assert_eq!(out.blocking, Blocking::Full);
    }

    #[test]
    fn stores_do_not_block() {
        let (_, mut h) = mini();
        let out = h.access(0, MemAccess::write(0x4000, 8), 0);
        assert_eq!(out.blocking, Blocking::None);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_lines() {
        let (cfg, mut h) = mini();
        // Write more distinct lines than L1 holds, all mapping over the tiny L1.
        let lines = cfg.l1.lines() * 4;
        for i in 0..lines {
            h.access(0, MemAccess::write(i * LINE_BYTES, 8), i * 10_000);
        }
        assert!(h.stats().l1.writebacks > 0);
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        let cfg = MachineConfig {
            l1: crate::CacheConfig {
                capacity: 1024,
                ways: 4,
                latency: 2,
            },
            l2: crate::CacheConfig {
                capacity: 256,
                ways: 2,
                latency: 10,
            },
            ..MachineConfig::mini_baseline()
        };
        let mut h = CacheHierarchy::new(&cfg);
        // With 16 banks interleaved by line, lines k and k+16 share bank (k%16)
        // and map to the same tiny bank set; stream enough to force L2 evictions.
        for i in 0..64u64 {
            h.access(0, MemAccess::read(i * 16 * LINE_BYTES, 8), i * 10_000);
        }
        let s = h.stats();
        assert!(s.l1.invalidations > 0, "inclusive L2 must back-invalidate");
    }

    #[test]
    fn local_bank_access_is_cheaper_than_remote() {
        let (cfg, mut h) = mini();
        // Line homed at bank 0 accessed by core 0 (local).
        let local = h.access(0, MemAccess::read(0, 8), 0).completion;
        // Line homed at bank 1 accessed by core 0 (remote), same L2/DRAM path.
        let mut h2 = CacheHierarchy::new(&cfg);
        let remote = h2.access(0, MemAccess::read(LINE_BYTES, 8), 0).completion;
        assert!(remote > local);
    }

    #[test]
    fn noc_traffic_accumulates_line_transfers() {
        let (_, mut h) = mini();
        h.access(0, MemAccess::read(LINE_BYTES, 8), 0); // remote bank
        assert!(h.stats().noc.bytes >= LINE_BYTES);
    }

    #[test]
    fn telemetry_collects_histograms_and_windows() {
        let mut cfg = MachineConfig::mini_baseline();
        cfg.telemetry = crate::telemetry::TelemetryConfig::windowed(500);
        let mut h = CacheHierarchy::new(&cfg);
        assert!(h.telemetry_enabled());
        for i in 0..20u64 {
            h.access(0, MemAccess::read(0x4000 + i * LINE_BYTES, 8), i * 100);
        }
        h.access(0, MemAccess::atomic(0x4000, 8, AtomicKind::FpAdd), 2000);
        h.finish(2100);
        let s = h.stats();
        let t = h.take_telemetry().expect("telemetry was enabled");
        // A second take yields nothing.
        assert!(h.take_telemetry().is_none());
        // One miss-latency sample per L1 miss; one lock-wait per atomic.
        assert_eq!(t.miss_latency.count(), s.l1.misses);
        assert_eq!(t.lock_wait.count(), s.atomics.executed);
        assert_eq!(t.dram_queue.count(), s.dram.reads + s.dram.writes);
        assert_eq!(t.window_cycles, 500);
        assert!(!t.windows.is_empty());
        // Window deltas recombine to the run totals.
        let mut total = MemStats::default();
        for w in &t.windows {
            total.merge(&w.delta);
        }
        assert_eq!(total, s);
        // Window ends are strictly increasing.
        for pair in t.windows.windows(2) {
            assert!(pair[0].end < pair[1].end);
        }
    }

    #[test]
    fn disabled_telemetry_returns_none_and_identical_stats() {
        let (cfg, mut h) = mini();
        assert!(!h.telemetry_enabled());
        let mut cfg_on = cfg;
        cfg_on.telemetry = crate::telemetry::TelemetryConfig::windowed(256);
        let mut h_on = CacheHierarchy::new(&cfg_on);
        for i in 0..50u64 {
            let a = MemAccess::read((i % 13) * LINE_BYTES, 8);
            let t = i * 37;
            assert_eq!(h.access(0, a, t), h_on.access(0, a, t));
        }
        h.finish(5000);
        h_on.finish(5000);
        // Telemetry must not perturb timing or statistics.
        assert_eq!(h.stats(), h_on.stats());
        assert!(h.take_telemetry().is_none());
        assert!(h_on.take_telemetry().is_some());
    }
}
