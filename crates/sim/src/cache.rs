//! Set-associative cache array mechanics: lookup, fill, LRU eviction, and
//! MESI line states. Policy (when to fill, what state to install) is decided
//! by the owning hierarchy; this module only provides the mechanics.

use crate::config::CacheConfig;
use crate::line_of;

/// MESI coherence state of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Present, clean, possibly in other caches.
    Shared,
    /// Present, clean, only copy.
    Exclusive,
    /// Present, dirty, only copy.
    Modified,
}

impl LineState {
    /// Whether this state permits a store without an upgrade.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// Whether a writeback is needed on eviction.
    pub fn dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u64,
    state: LineState,
    lru: u64,
    pinned: bool,
}

/// A set-associative cache array with LRU replacement.
///
/// Addresses are tracked at line (64 B) granularity; the array stores no
/// data, only tags and states — the simulator is timing-only.
///
/// # Example
///
/// ```
/// use omega_sim::cache::{CacheArray, LineState};
/// use omega_sim::CacheConfig;
///
/// let mut l1 = CacheArray::new(&CacheConfig { capacity: 512, ways: 4, latency: 2 });
/// assert_eq!(l1.lookup(0x40), None); // cold miss
/// l1.insert(0x40, LineState::Exclusive);
/// assert_eq!(l1.lookup(0x40), Some(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Slot>>,
    ways: usize,
    tick: u64,
}

/// Result of inserting a line: the victim, if a valid line was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the victim.
    pub line: u64,
    /// Its state at eviction (dirty ⇒ the caller must write it back).
    pub state: LineState,
}

impl CacheArray {
    /// Creates an empty array with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or zero ways.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        assert!(
            sets > 0 && ways > 0,
            "cache must have at least one set and way"
        );
        CacheArray {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            tick: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / crate::LINE_BYTES) % self.sets.len() as u64) as usize
    }

    /// Looks up the line containing `addr`; updates LRU on hit.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let line = line_of(addr);
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter_mut().find(|s| s.line == line).map(|s| {
            s.lru = tick;
            s.state
        })
    }

    /// Peeks at the state without touching LRU (used by directory probes).
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        let line = line_of(addr);
        let idx = self.set_index(line);
        self.sets[idx]
            .iter()
            .find(|s| s.line == line)
            .map(|s| s.state)
    }

    /// Changes the state of a resident line; returns `false` if absent.
    pub fn set_state(&mut self, addr: u64, state: LineState) -> bool {
        let line = line_of(addr);
        let idx = self.set_index(line);
        match self.sets[idx].iter_mut().find(|s| s.line == line) {
            Some(s) => {
                s.state = state;
                true
            }
            None => false,
        }
    }

    /// Inserts the line containing `addr` in `state`, evicting the LRU
    /// victim if the set is full. Re-inserting a resident line just updates
    /// its state.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<Eviction> {
        let line = line_of(addr);
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(s) = set.iter_mut().find(|s| s.line == line) {
            s.state = state;
            s.lru = tick;
            return None;
        }
        if set.len() < ways {
            set.push(Slot {
                line,
                state,
                lru: tick,
                pinned: false,
            });
            return None;
        }
        // Victimise the least-recently-used *unpinned* line (§IX locked
        // cache: pinned lines have their replacement disabled). A set made
        // entirely of pinned lines cannot host the newcomer: the access is
        // served but not cached.
        let victim_idx = set
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.pinned)
            .min_by_key(|(_, s)| s.lru)
            .map(|(i, _)| i);
        let Some(victim_idx) = victim_idx else {
            return None; // bypass: fully pinned set
        };
        let victim = set[victim_idx];
        set[victim_idx] = Slot {
            line,
            state,
            lru: tick,
            pinned: false,
        };
        Some(Eviction {
            line: victim.line,
            state: victim.state,
        })
    }

    /// Pins the line containing `addr` into its set (loading it `Shared` if
    /// absent), disabling its replacement — the locked-cache technique the
    /// paper discusses as an alternative to scratchpads (§IX). As on real
    /// lockdown hardware (e.g. ARM way-lockdown), at most half of a set's
    /// ways may be locked; pinning beyond that is refused (returns
    /// `false`) so ordinary traffic keeps associativity.
    pub fn pin(&mut self, addr: u64) -> bool {
        let line = line_of(addr);
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(s) = set.iter_mut().find(|s| s.line == line) {
            s.pinned = true;
            return true;
        }
        let pinned_ways = set.iter().filter(|s| s.pinned).count();
        if pinned_ways + 1 > (ways / 2).max(1).min(ways - 1) {
            return false; // lockdown cap: at most half the ways, always one free
        }
        if set.len() < ways {
            set.push(Slot {
                line,
                state: LineState::Shared,
                lru: tick,
                pinned: true,
            });
            return true;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.pinned)
            .min_by_key(|(_, s)| s.lru)
            .map(|(i, _)| i)
            .expect("pinned_ways + 1 < ways implies an unpinned way exists");
        set[victim_idx] = Slot {
            line,
            state: LineState::Shared,
            lru: tick,
            pinned: true,
        };
        true
    }

    /// Number of pinned lines.
    pub fn pinned_count(&self) -> usize {
        self.sets.iter().flatten().filter(|s| s.pinned).count()
    }

    /// Removes the line containing `addr`; returns its state if it was
    /// present (coherence invalidation).
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let line = line_of(addr);
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|s| s.line == line)
            .map(|i| set.swap_remove(i).state)
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> CacheArray {
        // 2 sets × 2 ways of 64B lines = 256B.
        CacheArray::new(&CacheConfig {
            capacity: 256,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(0x40), None);
        assert_eq!(c.insert(0x40, LineState::Shared), None);
        assert_eq!(c.lookup(0x40), Some(LineState::Shared));
        // Same line, different offset.
        assert_eq!(c.lookup(0x7F), Some(LineState::Shared));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0x000, 0x080, 0x100 map to set 0 (stride 2 lines).
        c.insert(0x000, LineState::Shared);
        c.insert(0x080, LineState::Shared);
        c.lookup(0x000); // make 0x080 the LRU
        let ev = c.insert(0x100, LineState::Shared).unwrap();
        assert_eq!(ev.line, 0x080);
        assert_eq!(c.lookup(0x000), Some(LineState::Shared));
        assert_eq!(c.lookup(0x080), None);
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = tiny();
        c.insert(0x000, LineState::Modified);
        c.insert(0x080, LineState::Shared);
        let ev = c.insert(0x100, LineState::Shared).unwrap();
        assert_eq!(ev.state, LineState::Modified);
        assert!(ev.state.dirty());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(0x40, LineState::Exclusive);
        assert_eq!(c.invalidate(0x40), Some(LineState::Exclusive));
        assert_eq!(c.invalidate(0x40), None);
        assert_eq!(c.lookup(0x40), None);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(0x40, LineState::Shared);
        assert_eq!(c.insert(0x40, LineState::Modified), None);
        assert_eq!(c.peek(0x40), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn set_state_only_touches_resident_lines() {
        let mut c = tiny();
        assert!(!c.set_state(0x40, LineState::Modified));
        c.insert(0x40, LineState::Shared);
        assert!(c.set_state(0x40, LineState::Modified));
    }

    #[test]
    fn writable_states() {
        assert!(!LineState::Shared.writable());
        assert!(LineState::Exclusive.writable());
        assert!(LineState::Modified.writable());
    }

    #[test]
    fn pinned_lines_survive_thrashing() {
        let mut c = tiny();
        assert!(c.pin(0x000));
        // Stream conflicting lines through set 0.
        for i in 1..20u64 {
            c.insert(i * 0x80, LineState::Shared);
        }
        assert_eq!(
            c.lookup(0x000),
            Some(LineState::Shared),
            "pinned line must remain"
        );
        assert_eq!(c.pinned_count(), 1);
    }

    #[test]
    fn pinning_keeps_one_evictable_way() {
        let mut c = tiny(); // 2 ways per set
        assert!(c.pin(0x000));
        assert!(!c.pin(0x080), "second pin would fill set 0 entirely");
        assert_eq!(c.pinned_count(), 1);
    }

    #[test]
    fn fully_pinned_insert_bypasses() {
        // 1-way cache: pinning is refused, so force the scenario manually
        // with a 2-way cache where one way is pinned and one is busy.
        let mut c = tiny();
        c.pin(0x000);
        c.insert(0x080, LineState::Shared);
        // Inserting a third conflicting line evicts the unpinned one.
        let ev = c.insert(0x100, LineState::Shared).unwrap();
        assert_eq!(ev.line, 0x080);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.insert(0x000, LineState::Shared); // set 0
        c.insert(0x040, LineState::Shared); // set 1
        c.insert(0x080, LineState::Shared); // set 0
        assert_eq!(c.occupancy(), 3);
    }
}
