//! Model-conservation auditor.
//!
//! Every OMEGA claim is a *relative* memory-subsystem quantity — on-chip
//! traffic (Fig. 17), DRAM bandwidth utilisation (Fig. 16), stall
//! breakdowns — so silent accounting drift in the timing model corrupts
//! every figure at once. This module is the correctness backbone the rest
//! of the repository checks itself against:
//!
//! * [`AuditReport`] collects named invariant checks and their violations;
//! * component models expose `audit_into` (see [`crate::noc::Crossbar`]
//!   and [`crate::dram::DramModel`]) for checks that need live internal
//!   ledgers (per-port busy cycles, per-channel occupancy);
//! * [`check_engine`], [`check_mem_stats`], and [`check_telemetry`] verify
//!   the end-of-run flow invariants that only need the public reports;
//! * [`run_probes`] replays tiny deterministic traffic patterns through
//!   fresh component models — these fail loudly if the accounting fixes
//!   they pin (round-trip serialisation, laggard phantom queueing) ever
//!   regress.
//!
//! The checks are exact equalities wherever the model guarantees one, and
//! two-sided bounds where rounding makes equality unobservable from the
//! outside (e.g. NoC busy cycles vs. bytes).

use std::fmt;

use crate::config::{DramConfig, NocConfig};
use crate::dram::{DramModel, RowMode};
use crate::engine::EngineReport;
use crate::noc::Crossbar;
use crate::stats::MemStats;
use crate::telemetry::TelemetryReport;

/// One failed invariant: which component, which conservation law, and the
/// observed numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Component the invariant belongs to (`noc`, `dram`, `engine`, …).
    pub component: String,
    /// Human-readable statement of the violated invariant.
    pub invariant: String,
    /// The observed quantities that broke it.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({})",
            self.component, self.invariant, self.detail
        )
    }
}

/// Accumulates invariant checks; retains every violation.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    checks: u64,
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invariant check. `detail` is only evaluated on failure.
    pub fn check(
        &mut self,
        component: &str,
        invariant: &str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok {
            self.violations.push(AuditViolation {
                component: component.to_string(),
                invariant: invariant.to_string(),
                detail: detail(),
            });
        }
    }

    /// Number of checks performed (passed or failed).
    pub fn checks_run(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// True when no check has failed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report's checks and violations into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} checks)", self.checks);
        }
        writeln!(
            f,
            "audit FAILED: {} of {} checks violated",
            self.violations.len(),
            self.checks
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Checks the engine's wall-time conservation: the five per-core stall
/// buckets partition each core's finish time exactly, no core finishes
/// after the reported total, and the total is exactly the latest finisher.
pub fn check_engine(report: &EngineReport, out: &mut AuditReport) {
    let mut latest = 0;
    for (i, core) in report.per_core.iter().enumerate() {
        latest = latest.max(core.finish_time);
        out.check(
            "engine",
            "stall buckets partition wall time",
            core.attributed_cycles() == core.finish_time,
            || {
                format!(
                    "core {i}: attributed {} vs finish {}",
                    core.attributed_cycles(),
                    core.finish_time
                )
            },
        );
        out.check(
            "engine",
            "no core outlives the run",
            core.finish_time <= report.total_cycles,
            || {
                format!(
                    "core {i}: finish {} > total {}",
                    core.finish_time, report.total_cycles
                )
            },
        );
    }
    if !report.per_core.is_empty() {
        out.check(
            "engine",
            "total_cycles is the latest finisher",
            report.total_cycles == latest,
            || format!("total {} vs latest finish {latest}", report.total_cycles),
        );
    }
}

/// Checks the cross-component flow conservation visible in the cumulative
/// [`MemStats`]: cache fills must be matched by downstream traffic, every
/// DRAM request must originate from an L2 miss, an L2 writeback, or one of
/// OMEGA's direct word/PIM paths, and offloaded atomics cannot outnumber
/// executed ones.
pub fn check_mem_stats(stats: &MemStats, out: &mut AuditReport) {
    out.check(
        "hierarchy",
        "every L1 miss becomes exactly one L2 access",
        stats.l2.accesses() == stats.l1.misses,
        || {
            format!(
                "l2 accesses {} vs l1 misses {}",
                stats.l2.accesses(),
                stats.l1.misses
            )
        },
    );
    let expected_dram = stats.l2.misses
        + stats.l2.writebacks
        + stats.scratchpad.word_dram_accesses
        + stats.scratchpad.pim_ops;
    out.check(
        "dram",
        "reads + writes == L2 misses + writebacks + word/PIM accesses",
        stats.dram.accesses() == expected_dram,
        || {
            format!(
                "dram accesses {} vs l2.misses {} + l2.writebacks {} + word {} + pim {}",
                stats.dram.accesses(),
                stats.l2.misses,
                stats.l2.writebacks,
                stats.scratchpad.word_dram_accesses,
                stats.scratchpad.pim_ops
            )
        },
    );
    out.check(
        "dram",
        "row outcomes exactly partition the open-page accesses",
        stats.dram.row_hits + stats.dram.row_conflicts + stats.dram.row_opens
            == stats.dram.open_page_accesses,
        || {
            format!(
                "hits {} + conflicts {} + opens {} != open-page accesses {}",
                stats.dram.row_hits,
                stats.dram.row_conflicts,
                stats.dram.row_opens,
                stats.dram.open_page_accesses
            )
        },
    );
    out.check(
        "dram",
        "open-page accesses never outnumber accesses",
        stats.dram.open_page_accesses <= stats.dram.accesses(),
        || {
            format!(
                "open-page accesses {} > accesses {}",
                stats.dram.open_page_accesses,
                stats.dram.accesses()
            )
        },
    );
    out.check(
        "dram",
        "busy channels imply transferred bytes",
        (stats.dram.busy_cycles == 0) == (stats.dram.bytes == 0),
        || {
            format!(
                "busy {} vs bytes {}",
                stats.dram.busy_cycles, stats.dram.bytes
            )
        },
    );
    out.check(
        "scratchpad",
        "offloaded atomics never outnumber executed atomics",
        stats.scratchpad.pisc_ops + stats.scratchpad.pim_ops <= stats.atomics.executed,
        || {
            format!(
                "pisc {} + pim {} > executed {}",
                stats.scratchpad.pisc_ops, stats.scratchpad.pim_ops, stats.atomics.executed
            )
        },
    );
}

/// Checks that a run's telemetry is a lossless decomposition of its
/// cumulative stats: one histogram sample per underlying event, histogram
/// sums equal to the matching counters, and per-window deltas that merge
/// back to the run totals under strictly increasing window ends.
pub fn check_telemetry(stats: &MemStats, telemetry: &TelemetryReport, out: &mut AuditReport) {
    out.check(
        "telemetry",
        "one NoC contention sample per packet",
        telemetry.noc_contention.count() == stats.noc.packets,
        || {
            format!(
                "{} samples vs {} packets",
                telemetry.noc_contention.count(),
                stats.noc.packets
            )
        },
    );
    out.check(
        "telemetry",
        "NoC contention histogram sums to contention_cycles",
        telemetry.noc_contention.sum() == stats.noc.contention_cycles as u128,
        || {
            format!(
                "histogram {} vs counter {}",
                telemetry.noc_contention.sum(),
                stats.noc.contention_cycles
            )
        },
    );
    out.check(
        "telemetry",
        "one DRAM queue sample per access",
        telemetry.dram_queue.count() == stats.dram.accesses(),
        || {
            format!(
                "{} samples vs {} accesses",
                telemetry.dram_queue.count(),
                stats.dram.accesses()
            )
        },
    );
    out.check(
        "telemetry",
        "DRAM queue histogram sums to queue_cycles",
        telemetry.dram_queue.sum() == stats.dram.queue_cycles as u128,
        || {
            format!(
                "histogram {} vs counter {}",
                telemetry.dram_queue.sum(),
                stats.dram.queue_cycles
            )
        },
    );
    out.check(
        "telemetry",
        "one miss-latency sample per L1 miss",
        telemetry.miss_latency.count() == stats.l1.misses,
        || {
            format!(
                "{} samples vs {} misses",
                telemetry.miss_latency.count(),
                stats.l1.misses
            )
        },
    );
    let mut recombined = MemStats::default();
    let mut prev_end = 0;
    let mut ends_increase = true;
    for w in &telemetry.windows {
        if w.end <= prev_end {
            ends_increase = false;
        }
        prev_end = w.end;
        recombined.merge(&w.delta);
    }
    out.check(
        "telemetry",
        "window end cycles strictly increase",
        ends_increase,
        || format!("{} windows", telemetry.windows.len()),
    );
    if !telemetry.windows.is_empty() {
        out.check(
            "telemetry",
            "window deltas merge back to run totals",
            recombined == *stats,
            || format!("recombined {recombined:?} vs totals {stats:?}"),
        );
    }
}

fn probe_noc_config() -> NocConfig {
    NocConfig {
        latency: 8,
        bytes_per_cycle: 16,
        header_bytes: 8,
    }
}

/// Replays round trips through a fresh crossbar and audits the result:
/// fails if the response leg ever stops paying serialisation through the
/// port accounting (the `packets`-vs-histogram and busy-vs-bytes checks
/// both trip on that regression).
pub fn probe_round_trip_accounting() -> AuditReport {
    let mut out = AuditReport::new();
    let mut x = Crossbar::new(probe_noc_config(), 2);
    x.enable_telemetry();
    for t in 0..8 {
        x.round_trip(1, 8, 64, t * 3);
    }
    x.audit_into(&mut out);
    out.check(
        "noc",
        "round-trip port busy covers both legs",
        x.port_busy(1) == 8 * (1 + 5),
        || format!("port busy {} vs expected {}", x.port_busy(1), 8 * (1 + 5)),
    );
    out
}

/// Sends a lagging packet into a pre-built future backlog and checks that
/// neither its latency nor its contention stats are charged phantom
/// queueing — the crossbar half of the laggard rule.
pub fn probe_noc_laggard() -> AuditReport {
    let mut out = AuditReport::new();
    let mut x = Crossbar::new(probe_noc_config(), 1);
    x.enable_telemetry();
    for _ in 0..10 {
        x.send(0, 56, 1_000_000);
    }
    let ahead = x.stats().contention_cycles;
    let t = x.send(0, 56, 10);
    out.check(
        "noc",
        "lagging sender's latency is uncontended",
        t == 10 + 8 + 4,
        || format!("latency {} vs expected {}", t - 10, 8 + 4),
    );
    out.check(
        "noc",
        "lagging sender is not charged phantom contention",
        x.stats().contention_cycles == ahead,
        || {
            format!(
                "contention grew {} -> {}",
                ahead,
                x.stats().contention_cycles
            )
        },
    );
    x.audit_into(&mut out);
    out
}

/// The DRAM half of the laggard rule: a lagging requester sees a free
/// channel (flat latency) and must not be charged the future backlog as
/// queue cycles.
pub fn probe_dram_laggard() -> AuditReport {
    let mut out = AuditReport::new();
    let mut d = DramModel::new(DramConfig {
        channels: 2,
        latency: 100,
        bytes_per_cycle: 6.4,
        default_mode: RowMode::ClosePage,
    });
    d.enable_telemetry();
    for i in 0..10 {
        d.access_line(i * 0x80, false, 1_000_000);
    }
    let queued = d.stats().queue_cycles;
    let t = d.access_line(0x200, false, 10);
    out.check(
        "dram",
        "lagging access pays flat latency",
        t == 10 + 100 + 10,
        || format!("completion {t} vs expected {}", 10 + 100 + 10),
    );
    out.check(
        "dram",
        "lagging access is not charged phantom queueing",
        d.stats().queue_cycles == queued,
        || format!("queue_cycles grew {} -> {}", queued, d.stats().queue_cycles),
    );
    d.audit_into(&mut out);
    out
}

/// Interleaves open-page, close-page, and PIM-style rank-local traffic
/// through one DRAM model and checks the row-outcome partition stays
/// exact: every open-page access lands in exactly one of
/// `row_hits`/`row_conflicts`/`row_opens`, and close-page traffic (the
/// rank-offload path always precharges) contributes no outcome at all.
/// This pins the accounting against an outcome being double-counted or
/// dropped when a rank-local access bypasses the channel queue.
pub fn probe_row_outcome_partition() -> AuditReport {
    let mut out = AuditReport::new();
    let mut d = DramModel::new(DramConfig {
        channels: 2,
        latency: 100,
        bytes_per_cycle: 6.4,
        default_mode: RowMode::ClosePage,
    });
    let mut open_page = 0u64;
    for i in 0..30u64 {
        // Every third access mimics the PIM rank-offload write: close-page,
        // word-granularity, issued out of lockstep with the open-page
        // stream (including laggard arrival times).
        if i % 3 == 2 {
            d.access(i * 0x90, 8, true, RowMode::ClosePage, i * 5);
        } else {
            d.access(i * 0x90, 64, i % 2 == 0, RowMode::OpenPage, i * 11);
            open_page += 1;
        }
    }
    let s = d.stats();
    out.check(
        "dram",
        "open-page accesses counted once each under interleaved policies",
        s.open_page_accesses == open_page,
        || format!("counted {} vs issued {}", s.open_page_accesses, open_page),
    );
    out.check(
        "dram",
        "close-page and rank-local accesses produce no row outcome",
        s.row_hits + s.row_conflicts + s.row_opens == open_page,
        || {
            format!(
                "hits {} + conflicts {} + opens {} vs {} open-page accesses",
                s.row_hits, s.row_conflicts, s.row_opens, open_page
            )
        },
    );
    d.audit_into(&mut out);
    out
}

/// Runs every deterministic component probe and folds the results into one
/// report. The `audit` binary runs this before touching any workload, so a
/// reverted accounting fix fails CI even if no sweep happens to exercise
/// the broken path.
pub fn run_probes() -> AuditReport {
    let mut out = probe_round_trip_accounting();
    out.merge(probe_noc_laggard());
    out.merge(probe_dram_laggard());
    out.merge(probe_row_outcome_partition());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CoreReport;
    use crate::stats::{CacheStats, DramStats};

    #[test]
    fn probes_are_clean_on_the_fixed_model() {
        let r = run_probes();
        assert!(r.is_clean(), "{r}");
        assert!(r.checks_run() > 10);
    }

    #[test]
    fn display_lists_violations() {
        let mut r = AuditReport::new();
        r.check("noc", "demo invariant", false, || "1 vs 2".into());
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("demo invariant"));
        assert!(text.contains("1 vs 2"));
    }

    #[test]
    fn check_engine_flags_unattributed_cycles() {
        let report = EngineReport {
            total_cycles: 100,
            per_core: vec![CoreReport {
                ops: 1,
                compute_cycles: 10,
                finish_time: 100,
                ..Default::default()
            }],
        };
        let mut out = AuditReport::new();
        check_engine(&report, &mut out);
        assert!(!out.is_clean(), "90 cycles vanished without attribution");
    }

    #[test]
    fn check_mem_stats_flags_unmatched_dram_traffic() {
        // The round-trip bug's signature at the stats level: traffic
        // counted somewhere without a matching origin elsewhere.
        let mut stats = MemStats {
            l1: CacheStats {
                misses: 4,
                ..Default::default()
            },
            l2: CacheStats {
                hits: 2,
                misses: 2,
                ..Default::default()
            },
            dram: DramStats {
                reads: 5, // only 2 L2 misses can explain reads
                bytes: 5 * 64,
                busy_cycles: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut out = AuditReport::new();
        check_mem_stats(&stats, &mut out);
        assert!(!out.is_clean());
        stats.dram.reads = 2;
        stats.dram.bytes = 2 * 64;
        stats.dram.busy_cycles = 20;
        let mut out = AuditReport::new();
        check_mem_stats(&stats, &mut out);
        assert!(out.is_clean(), "{out}");
    }

    #[test]
    fn merge_accumulates_checks_and_violations() {
        let mut a = AuditReport::new();
        a.check("x", "ok", true, String::new);
        let mut b = AuditReport::new();
        b.check("y", "bad", false, || "d".into());
        a.merge(b);
        assert_eq!(a.checks_run(), 2);
        assert_eq!(a.violations().len(), 1);
    }
}
