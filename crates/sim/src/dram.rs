//! Off-chip memory model: DDR3-like channels with a fixed access latency
//! and per-channel bandwidth occupancy (Table III: 4×DDR3-1600, 12.8 GB/s
//! per channel).
//!
//! Each line-sized request occupies its channel for
//! `bytes / bytes_per_cycle` cycles; requests to a busy channel queue. The
//! busy-cycle counter divided by elapsed time is the Fig. 16 "DRAM bandwidth
//! utilisation" metric.
//!
//! In the parallel-replay discipline (see `engine`'s module docs) the
//! per-channel ledgers — backlog, last-arrival, busy cycles, and the
//! open-row state behind [`RowMode::OpenPage`] — are **globally-ordered
//! contention state**: every access consults and mutates its channel in
//! causal order with zero lookahead, so the DRAM model is owned by the
//! single timing thread and is never sharded across staging workers.

use crate::audit::AuditReport;
use crate::config::DramConfig;
use crate::obs::IntervalRecorder;
use crate::stats::DramStats;
use crate::telemetry::LatencyHistogram;
use crate::{Cycle, LINE_BYTES};

/// DRAM row span covered by one row-buffer entry, in bytes. Because
/// channels are line-interleaved, a sequential stream revisits each
/// channel's open row every `channels` lines.
pub const ROW_SPAN_BYTES: u64 = 8192;
/// Access latency when the open row already holds the address (open-page
/// policy row hit).
pub const ROW_HIT_LATENCY: u32 = 18;
/// Extra precharge latency when an open row must be closed first
/// (open-page row conflict).
pub const ROW_CONFLICT_EXTRA: u32 = 12;

/// Row-buffer management policy for one access (§IX.3 of the paper
/// proposes a *hybrid*: close-page for the randomly-accessed cold vtxProp,
/// open-page for streams like the edge list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowMode {
    /// Leave the row open after the access: later hits to the same row are
    /// fast, conflicts pay a precharge.
    OpenPage,
    /// Precharge immediately: flat latency, no row state.
    ClosePage,
}

/// Multi-channel DRAM with fixed latency plus bandwidth contention.
///
/// Contention is a per-channel *leaky-bucket backlog*: each access adds its
/// transfer occupancy to the channel's backlog, which drains one cycle per
/// cycle of simulated time; an access is delayed by the backlog ahead of
/// it. This keeps genuine bandwidth saturation visible while staying
/// robust to the replay engine's bounded per-core time divergence (hard
/// `busy-until` reservations would charge lagging cores phantom waits).
/// # Example
///
/// ```
/// use omega_sim::dram::{DramModel, RowMode};
/// use omega_sim::DramConfig;
///
/// let mut dram = DramModel::new(DramConfig {
///     channels: 4,
///     latency: 60,
///     bytes_per_cycle: 6.4,
///     default_mode: RowMode::ClosePage,
/// });
/// let done = dram.access_line(0x1000, false, 0);
/// assert_eq!(done, 60 + 10); // 64 B at 6.4 B/cycle occupies 10 cycles
/// assert_eq!(dram.stats().reads, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    channel_backlog: Vec<u64>,
    channel_last: Vec<Cycle>,
    // Conservation ledger: per-channel transfer occupancy. The auditor
    // cross-checks its sum against the global `busy_cycles` counter.
    channel_busy: Vec<u64>,
    open_row: Vec<Option<u64>>,
    stats: DramStats,
    // Per-access queue-delay histogram; None (no per-access cost beyond
    // one branch) unless telemetry is enabled.
    queue_histogram: Option<Box<LatencyHistogram>>,
    // Simulated per-channel busy windows for the obs timeline; None (one
    // branch per access) unless a trace session is active at construction.
    busy_windows: Option<Box<IntervalRecorder>>,
}

impl DramModel {
    /// Creates the DRAM model.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel {
            channel_backlog: vec![0; cfg.channels],
            channel_last: vec![0; cfg.channels],
            channel_busy: vec![0; cfg.channels],
            open_row: vec![None; cfg.channels],
            busy_windows: IntervalRecorder::if_active("dram.ch", cfg.channels),
            cfg,
            stats: DramStats::default(),
            queue_histogram: None,
        }
    }

    /// Flushes recorded simulated busy windows into the obs registry.
    /// No-op (one branch) when no trace session was active at build time.
    pub fn flush_obs(&mut self) {
        if let Some(w) = self.busy_windows.as_deref_mut() {
            w.flush();
        }
    }

    /// Starts recording the per-access queue delay (cycles each request
    /// spends waiting behind its channel's backlog) into a histogram.
    pub fn enable_telemetry(&mut self) {
        self.queue_histogram = Some(Box::default());
    }

    /// Takes the queue-delay histogram collected since
    /// [`Self::enable_telemetry`], leaving telemetry disabled.
    pub fn take_queue_histogram(&mut self) -> Option<LatencyHistogram> {
        self.queue_histogram.take().map(|h| *h)
    }

    /// Issues a line-granularity access at `now`; returns its completion
    /// cycle. `is_write` distinguishes writebacks (which are posted — the
    /// returned cycle is when the channel is free again, but callers
    /// typically do not wait on it).
    pub fn access_line(&mut self, addr: u64, is_write: bool, now: Cycle) -> Cycle {
        self.access(
            addr,
            LINE_BYTES as u32,
            is_write,
            self.cfg.default_mode,
            now,
        )
    }

    /// Issues an access of `bytes` under the configured default row policy
    /// (word-granularity DRAM access is one of the paper's §IX future-work
    /// extensions; the model supports it so the ablation can explore it).
    pub fn access_bytes(&mut self, addr: u64, bytes: u32, is_write: bool, now: Cycle) -> Cycle {
        self.access(addr, bytes, is_write, self.cfg.default_mode, now)
    }

    /// Issues an access with an explicit row-buffer policy — the hook for
    /// the paper's §IX.3 hybrid page policy (close-page for cold vtxProp,
    /// open-page for streamed structures).
    pub fn access(
        &mut self,
        addr: u64,
        bytes: u32,
        is_write: bool,
        mode: RowMode,
        now: Cycle,
    ) -> Cycle {
        let ch = ((addr / LINE_BYTES) % self.cfg.channels as u64) as usize;
        let occupancy = ((bytes as f64 / self.cfg.bytes_per_cycle).ceil() as u64).max(1);
        // Row-buffer state.
        let row = addr / ROW_SPAN_BYTES;
        let latency = match mode {
            RowMode::ClosePage => {
                // Flat latency; any open row is implicitly closed.
                self.open_row[ch] = None;
                self.cfg.latency as u64
            }
            RowMode::OpenPage => {
                self.stats.open_page_accesses += 1;
                match self.open_row[ch] {
                    Some(open) if open == row => {
                        self.stats.row_hits += 1;
                        ROW_HIT_LATENCY as u64
                    }
                    Some(_) => {
                        self.stats.row_conflicts += 1;
                        self.open_row[ch] = Some(row);
                        (self.cfg.latency + ROW_CONFLICT_EXTRA) as u64
                    }
                    None => {
                        self.stats.row_opens += 1;
                        self.open_row[ch] = Some(row);
                        self.cfg.latency as u64
                    }
                }
            }
        };
        // Drain the backlog by the time elapsed since the last arrival. A
        // lagging requester (now behind the channel's last arrival) lands
        // in the channel's past: the backlog there is phantom from its
        // point of view, so it neither waits behind it nor adds to it —
        // the same rule the crossbar applies to lagging senders.
        let last = self.channel_last[ch];
        let ahead = if now < last {
            0
        } else {
            let drained = self.channel_backlog[ch].saturating_sub(now - last);
            self.channel_last[ch] = now;
            self.channel_backlog[ch] = drained + occupancy;
            drained
        };
        self.stats.queue_cycles += ahead;
        if let Some(h) = self.queue_histogram.as_deref_mut() {
            h.record(ahead);
        }
        self.channel_busy[ch] += occupancy;
        self.stats.busy_cycles += occupancy;
        self.stats.bytes += bytes as u64;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        debug_assert_eq!(
            self.channel_busy.iter().sum::<u64>(),
            self.stats.busy_cycles,
            "per-channel occupancy must reconcile with the busy counter"
        );
        // Wait behind the queued work, then pay row access + transfer.
        let completion = now + ahead + latency + occupancy;
        if let Some(w) = self.busy_windows.as_deref_mut() {
            // The transfer occupies the channel for the final `occupancy`
            // cycles of the access; back-to-back windows coalesce.
            w.record(ch, completion - occupancy, completion);
        }
        completion
    }

    /// Activity statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Transfer occupancy accumulated on `channel`.
    pub fn channel_busy(&self, channel: usize) -> u64 {
        self.channel_busy[channel]
    }

    /// Checks the DRAM model's flow-conservation invariants into `out`:
    /// `busy_cycles` equals the per-channel occupancy sum, every access is
    /// a read or a write, the open-page row outcomes partition their
    /// accesses, and (when telemetry is live) the queue histogram has one
    /// sample per access summing to `queue_cycles`.
    pub fn audit_into(&self, out: &mut AuditReport) {
        let s = &self.stats;
        let accesses = s.reads + s.writes;
        let ledger: u64 = self.channel_busy.iter().sum();
        out.check(
            "dram",
            "busy_cycles == sum of per-channel occupancy",
            s.busy_cycles == ledger,
            || format!("busy {} vs channel ledger {}", s.busy_cycles, ledger),
        );
        out.check(
            "dram",
            "every access occupies its channel at least one cycle",
            s.busy_cycles >= accesses,
            || format!("busy {} < {} accesses", s.busy_cycles, accesses),
        );
        out.check(
            "dram",
            "row outcomes exactly partition the open-page accesses",
            s.row_hits + s.row_conflicts + s.row_opens == s.open_page_accesses,
            || {
                format!(
                    "hits {} + conflicts {} + opens {} != {} open-page accesses",
                    s.row_hits, s.row_conflicts, s.row_opens, s.open_page_accesses
                )
            },
        );
        out.check(
            "dram",
            "open-page accesses never outnumber accesses",
            s.open_page_accesses <= accesses,
            || {
                format!(
                    "{} open-page accesses > {} accesses",
                    s.open_page_accesses, accesses
                )
            },
        );
        if let Some(h) = self.queue_histogram.as_deref() {
            out.check(
                "dram",
                "queue histogram has one sample per access",
                h.count() == accesses,
                || format!("{} samples, {} accesses", h.count(), accesses),
            );
            out.check(
                "dram",
                "queue histogram sums to queue_cycles",
                h.sum() == s.queue_cycles as u128,
                || format!("histogram sum {}, counter {}", h.sum(), s.queue_cycles),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig {
            channels: 2,
            latency: 100,
            bytes_per_cycle: 6.4,
            default_mode: RowMode::ClosePage,
        })
    }

    #[test]
    fn uncontended_access_latency() {
        let mut d = model();
        let t = d.access_line(0, false, 50);
        // 64 / 6.4 = 10 cycles occupancy.
        assert_eq!(t, 50 + 100 + 10);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes, 64);
    }

    #[test]
    fn same_channel_back_to_back_queues() {
        let mut d = model();
        let t1 = d.access_line(0, false, 0);
        let t2 = d.access_line(0x80, false, 0); // lines 0 and 2 → both channel 0
        assert_eq!(
            t2,
            t1 + 10,
            "second access waits behind the first's transfer"
        );
        assert_eq!(d.stats().queue_cycles, 10);
        // After the backlog drains, no more queueing.
        let t3 = d.access_line(0x100, false, 10_000);
        assert_eq!(t3, 10_000 + 100 + 10);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = model();
        let t1 = d.access_line(0, false, 0);
        let t2 = d.access_line(0x40, false, 0); // line 1 → channel 1
        assert_eq!(t1, t2);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = model();
        d.access_line(0, true, 0);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn word_access_occupies_less() {
        let mut d = model();
        let base = d.access_bytes(0, 8, false, 0);
        assert_eq!(base, 100 + 2); // ceil(8/6.4)=2
        assert_eq!(d.stats().bytes, 8);
    }

    #[test]
    fn open_page_rewards_row_locality() {
        let mut d = model();
        // Sequential lines on channel 0 share a row under open-page.
        let first = d.access(0, 64, false, RowMode::OpenPage, 0);
        let second = d.access(0x80, 64, false, RowMode::OpenPage, 5000);
        assert_eq!(first, 110);
        assert_eq!(second, 5000 + ROW_HIT_LATENCY as u64 + 10);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_opens, 1, "the first access opened the row");
        assert_eq!(d.stats().row_conflicts, 0);
    }

    #[test]
    fn open_page_conflict_pays_precharge() {
        let mut d = model();
        d.access(0, 64, false, RowMode::OpenPage, 0);
        // A different row on the same channel conflicts.
        let t = d.access(ROW_SPAN_BYTES * 2, 64, false, RowMode::OpenPage, 5000);
        assert_eq!(t, 5000 + (100 + ROW_CONFLICT_EXTRA) as u64 + 10);
        assert_eq!(d.stats().row_conflicts, 1);
        // Hit + conflict + open partition the open-page accesses exactly.
        let s = d.stats();
        assert_eq!(
            s.row_hits + s.row_conflicts + s.row_opens,
            s.reads + s.writes
        );
    }

    #[test]
    fn close_page_never_hits_rows() {
        let mut d = model();
        d.access(0, 64, false, RowMode::ClosePage, 0);
        d.access(0x80, 64, false, RowMode::ClosePage, 5000);
        assert_eq!(d.stats().row_hits, 0);
        // Close-page accesses track no row state at all: the denominator
        // for row-locality ratios is the open-page population only.
        assert_eq!(d.stats().row_conflicts, 0);
        assert_eq!(d.stats().row_opens, 0);
    }

    #[test]
    fn close_page_closes_open_rows() {
        let mut d = model();
        d.access(0, 64, false, RowMode::OpenPage, 0);
        d.access(0x80, 64, false, RowMode::ClosePage, 5000);
        // The row was closed: no hit afterwards.
        let t = d.access(0x100, 64, false, RowMode::OpenPage, 10_000);
        assert_eq!(t, 10_000 + 100 + 10);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn queue_histogram_sums_to_queue_cycles() {
        let mut d = model();
        d.enable_telemetry();
        for i in 0..10 {
            d.access_line(i * 0x80, false, 0); // all channel 0: backlog grows
        }
        let s = d.stats();
        let h = d.take_queue_histogram().unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), s.queue_cycles as u128);
        assert!(h.quantile(1.0).unwrap() >= h.quantile(0.5).unwrap());
        // Telemetry is one-shot: taking it disables further recording.
        assert!(d.take_queue_histogram().is_none());
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut d = model();
        for i in 0..10 {
            d.access_line(i * 0x80, false, 0); // all channel 0
        }
        let s = d.stats();
        assert_eq!(s.busy_cycles, 100);
        assert!((s.utilization(100, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lagging_access_stats_match_its_latency() {
        let mut d = model();
        d.enable_telemetry();
        // Build a genuine backlog far in the future on channel 0.
        for i in 0..10 {
            d.access_line(i * 0x80, false, 1_000_000);
        }
        let q = d.stats().queue_cycles;
        assert!(q > 0, "the pile-up itself must register queueing");
        // A lagging requester sees a free channel: flat latency, and the
        // stats agree — no phantom queue charge.
        let t = d.access_line(0x200, false, 10);
        assert_eq!(t, 10 + 100 + 10);
        assert_eq!(
            d.stats().queue_cycles,
            q,
            "a lagging access must not be charged the future backlog"
        );
        let s = d.stats();
        let h = d.take_queue_histogram().unwrap();
        assert_eq!(h.count(), s.reads + s.writes);
        assert_eq!(h.sum(), s.queue_cycles as u128);
    }

    #[test]
    fn audit_passes_on_mixed_traffic() {
        let mut d = model();
        d.enable_telemetry();
        for i in 0..40u64 {
            let mode = if i % 3 == 0 {
                RowMode::OpenPage
            } else {
                RowMode::ClosePage
            };
            d.access(i * 0x50, 64, i % 2 == 0, mode, i * 7);
        }
        let mut report = AuditReport::default();
        d.audit_into(&mut report);
        assert!(report.is_clean(), "{report}");
        assert_eq!(d.channel_busy(0) + d.channel_busy(1), d.stats().busy_cycles);
    }
}
