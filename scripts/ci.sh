#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format, lint.
# The workspace is hermetic (no external crates), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Machine-readable smoke artifacts: the validation report and one telemetry
# dump (exercises the --json path and the stats binary end to end).
cargo run --release -q -p omega-bench --bin validate -- --json \
  > target/validate-report.json
cargo run --release -q -p omega-bench --bin stats -- \
  dump --dataset sd --algo pagerank --machine omega --scale tiny \
  --out target/telemetry-sample.json
echo "ci: wrote target/validate-report.json and target/telemetry-sample.json"

# Model-audit gate: conservation probes, the ten-machine sweep under the
# invariant checker (including the PIM-rank and specialized-cache rivals),
# and seeded differential config fuzzing. A fixed seed
# keeps the fuzz stream reproducible; the JSON report is a CI artifact.
# --jobs 2 runs every replay on the staged parallel engine, so the gate
# doubles as a parallel-vs-serial equivalence check.
cargo run --release -q -p omega-bench --bin audit -- \
  --quick --seed 658711 --jobs 2 --out target/audit-report.json
echo "ci: wrote target/audit-report.json"

# Performance snapshot (omega-bench-report/v1): microbench distributions
# plus the cold figures-all sweep wall-clock at jobs=1 and jobs=4 — the
# parallel-replay speedup is recorded in the same file. The full diff
# against the committed snapshot prints the perf trajectory
# (informational); the enforced pass re-checks only the end-to-end sweep
# wall-clocks and fails the build past a generous 50% regression — wide
# enough for shared-runner noise, tight enough to catch a serialisation
# bug in the staged engine.
./target/release/bench --out target/BENCH_sim.json
./target/release/stats bench-diff BENCH_sim.json target/BENCH_sim.json || true
./target/release/stats bench-diff BENCH_sim.json target/BENCH_sim.json \
  --fail-on-regress 50
echo "ci: wrote target/BENCH_sim.json"

# Observability gate, part 1: a small traced workload. The trace must be
# valid Chrome Trace Event JSON (Perfetto-loadable, every span closed,
# host spans AND simulated DRAM/NoC/core intervals present). A single
# dump keeps the artifact small; the full figures sweep would trace
# hundreds of thousands of intervals.
./target/release/stats dump --dataset sd --algo pagerank --machine omega \
  --scale tiny --trace target/trace-sample.json > /dev/null
./target/release/stats trace-check target/trace-sample.json
echo "ci: wrote target/trace-sample.json"

# Warm-store determinism gate: a second figure sweep against the same store
# must be byte-identical on stdout and perform zero functional traces and
# zero timing replays (everything served from the content-addressed cache).
# --jobs 4 runs the cold sweep through the parallel prefetch/staging path,
# so the gate also proves parallel replay feeds the store bit-identically.
store_dir=$(mktemp -d)
serve_pid=""
trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$store_dir"' EXIT
# The cold run doubles as observability gate part 2: it writes the
# self-profile report (a CI artifact) while the warm run stays obs-off —
# the stdout cmp then also proves profiling never leaks into results.
./target/release/figures all --tiny --jobs 4 --store "$store_dir/store" \
  --profile-out target/profile-report.json \
  > target/figures-cold.txt 2> target/figures-cold.err
./target/release/figures all --tiny --jobs 4 --store "$store_dir/store" \
  > target/figures-warm.txt 2> target/figures-warm.err
cmp target/figures-cold.txt target/figures-warm.txt
warm_line=$(grep '^\[store\]' target/figures-warm.err)
echo "ci: warm sweep $warm_line"
case "$warm_line" in
  *"traces=0"*"replays=0"*) ;;
  *) echo "ci: warm sweep re-simulated (expected traces=0 replays=0)" >&2
     exit 1 ;;
esac
./target/release/stats store verify "$store_dir/store" \
  > target/store-verify.json
echo "ci: wrote target/figures-{cold,warm}.txt, target/profile-report.json,"
echo "ci:   and target/store-verify.json"

# Service smoke: boot omega-serve (--jobs 4, memo capped at 2 entries so
# the 4-spec batch *must* evict) against the store the figure sweep just
# warmed, then drive the same batch through all three wire shapes —
# pipelined v2 frames twice, then one server-side grouped batch — and
# require (a) all three outputs byte-identical (flight-, memo-, store-
# and eviction-reloaded responses all match), (b) zero shed, a non-zero
# hit count, and a non-zero `evictions` counter in the v2 stats payload,
# and (c) a clean drain on shutdown. The server self-profiles for the
# whole lifetime; the profile and v2 stats reports are CI artifacts.
rm -f target/serve-port
./target/release/omega-serve --addr 127.0.0.1:0 --port-file target/serve-port \
  --store "$store_dir/store" --jobs 4 --queue-depth 8 --memo-entries 2 \
  --profile-out target/serve-profile.json &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s target/serve-port ] && break
  sleep 0.1
done
serve_addr=$(cat target/serve-port)
batch="sd:pagerank:baseline sd:pagerank:omega sd:bfs:omega sd:bfs:baseline"
./target/release/omega-client ping --addr "$serve_addr"
# shellcheck disable=SC2086
./target/release/omega-client batch --pipeline --addr "$serve_addr" \
  --scale tiny $batch > target/serve-batch-cold.txt
# shellcheck disable=SC2086
./target/release/omega-client batch --pipeline --addr "$serve_addr" \
  --scale tiny $batch > target/serve-batch-warm.txt
# shellcheck disable=SC2086
./target/release/omega-client batch --grouped --addr "$serve_addr" \
  --scale tiny $batch > target/serve-batch-grouped.txt
cmp target/serve-batch-cold.txt target/serve-batch-warm.txt
cmp target/serve-batch-cold.txt target/serve-batch-grouped.txt
./target/release/omega-client stats --addr "$serve_addr" \
  > target/serve-stats.json
grep -q '"schema": "omega-serve-stats/v2"' target/serve-stats.json \
  || { echo "ci: stats payload is not omega-serve-stats/v2" >&2; exit 1; }
hits=$(grep -o '"hits": [0-9]*' target/serve-stats.json | head -1 \
  | grep -o '[0-9]*$')
shed=$(grep -o '"shed": [0-9]*' target/serve-stats.json | head -1 \
  | grep -o '[0-9]*$')
evictions=$(grep -o '"evictions": [0-9]*' target/serve-stats.json | head -1 \
  | grep -o '[0-9]*$')
echo "ci: serve smoke hits=$hits shed=$shed evictions=$evictions"
[ "$shed" -eq 0 ] || { echo "ci: serve shed requests under the pipelined batch" >&2; exit 1; }
[ "$hits" -gt 0 ] || { echo "ci: warm batch produced no cache hits" >&2; exit 1; }
[ -n "$evictions" ] || { echo "ci: stats payload lacks the evictions counter" >&2; exit 1; }
[ "$evictions" -gt 0 ] || { echo "ci: 4 specs through a 2-entry memo must evict" >&2; exit 1; }
./target/release/omega-client shutdown --addr "$serve_addr"
wait "$serve_pid"
serve_pid=""
[ -s target/serve-profile.json ] || { echo "ci: missing serve profile artifact" >&2; exit 1; }
echo "ci: wrote target/serve-batch-{cold,warm,grouped}.txt,"
echo "ci:   target/serve-stats.json, and target/serve-profile.json"

echo "ci: all checks passed"
