#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format, lint.
# The workspace is hermetic (no external crates), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
