#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format, lint.
# The workspace is hermetic (no external crates), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Machine-readable smoke artifacts: the validation report and one telemetry
# dump (exercises the --json path and the stats binary end to end).
cargo run --release -q -p omega-bench --bin validate -- --json \
  > target/validate-report.json
cargo run --release -q -p omega-bench --bin stats -- \
  dump --dataset sd --algo pagerank --machine omega --scale tiny \
  --out target/telemetry-sample.json
echo "ci: wrote target/validate-report.json and target/telemetry-sample.json"

# Model-audit gate: conservation probes, the eight-machine sweep under the
# invariant checker, and seeded differential config fuzzing. A fixed seed
# keeps the fuzz stream reproducible; the JSON report is a CI artifact.
cargo run --release -q -p omega-bench --bin audit -- \
  --quick --seed 658711 --out target/audit-report.json
echo "ci: wrote target/audit-report.json"

# Warm-store determinism gate: a second figure sweep against the same store
# must be byte-identical on stdout and perform zero functional traces and
# zero timing replays (everything served from the content-addressed cache).
store_dir=$(mktemp -d)
trap 'rm -rf "$store_dir"' EXIT
./target/release/figures all --tiny --store "$store_dir/store" \
  > target/figures-cold.txt 2> target/figures-cold.err
./target/release/figures all --tiny --store "$store_dir/store" \
  > target/figures-warm.txt 2> target/figures-warm.err
cmp target/figures-cold.txt target/figures-warm.txt
warm_line=$(grep '^\[store\]' target/figures-warm.err)
echo "ci: warm sweep $warm_line"
case "$warm_line" in
  *"traces=0"*"replays=0"*) ;;
  *) echo "ci: warm sweep re-simulated (expected traces=0 replays=0)" >&2
     exit 1 ;;
esac
./target/release/stats store verify "$store_dir/store" \
  > target/store-verify.json
echo "ci: wrote target/figures-{cold,warm}.txt and target/store-verify.json"

echo "ci: all checks passed"
