#!/usr/bin/env bash
# Local mirror of the CI pipeline: build, test, format, lint.
# The workspace is hermetic (no external crates), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Machine-readable smoke artifacts: the validation report and one telemetry
# dump (exercises the --json path and the stats binary end to end).
cargo run --release -q -p omega-bench --bin validate -- --json \
  > target/validate-report.json
cargo run --release -q -p omega-bench --bin stats -- \
  dump --dataset sd --algo pagerank --machine omega --scale tiny \
  --out target/telemetry-sample.json
echo "ci: wrote target/validate-report.json and target/telemetry-sample.json"

echo "ci: all checks passed"
