//! Evolving-graph scenario (§IX "Dynamic graphs", implemented as an
//! extension): a social network keeps gaining edges, the configured hot set
//! drifts away from the true one, and OMEGA's speedup erodes — until the
//! framework re-runs the §VI reordering.
//!
//! ```text
//! cargo run --release --example evolving_graph
//! ```

use omega_core::config::SystemConfig;
use omega_core::runner::run_pair;
use omega_graph::dynamic::DynamicGraph;
use omega_graph::generators::{rmat, RmatParams};
use omega_graph::reorder;
use omega_graph::rng::SmallRng;
use omega_ligra::algorithms::Algo;

fn measure(g: &omega_graph::CsrGraph) -> f64 {
    // Scratchpads sized to hold just ~20% of this graph's vertices, so the
    // quality of the hot-set identification is what decides the speedup.
    let omega_cfg = SystemConfig::mini_omega().with_scratchpad_bytes(512);
    let (base, omega) = run_pair(
        g,
        Algo::PageRank { iters: 1 },
        &SystemConfig::mini_baseline(),
        &omega_cfg,
    );
    omega.speedup_over(&base)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0: a freshly-reordered natural graph.
    let g = rmat(12, 10, RmatParams::default(), 21)?;
    let (g, _) = reorder::canonical_hot_order(&g);
    let hot = g.num_vertices() / 5;
    let mut live = DynamicGraph::from_graph(&g, hot);
    println!(
        "day 0: {} members, {} edges; configured hot set covers {:.1}% of edges; OMEGA speedup {:.2}x",
        g.num_vertices(),
        g.num_edges(),
        100.0 * live.hot_set_coverage(),
        measure(&g),
    );

    // Days 1..: a handful of previously-quiet members go viral — the worst
    // case for a fixed hot set, since the new hubs live outside it.
    let mut rng = SmallRng::seed_from_u64(5);
    let n = live.num_vertices() as u32;
    for day in 1..=3 {
        for _ in 0..live.num_edges() / 5 {
            let u = rng.gen_range(0..n);
            // 40 "viral" members from the cold tail soak up the new edges.
            let v = n - 1 - rng.gen_range(0u32..40);
            let _ = live.insert_edge(u, v)?;
        }
        println!(
            "day {day}: {} edges; hot-set coverage {:.1}% (oracle {:.1}%), drift {:.1} pts — reorder needed: {}",
            live.num_edges(),
            100.0 * live.hot_set_coverage(),
            100.0 * live.oracle_coverage(),
            100.0 * live.drift(),
            live.needs_reorder(0.05),
        );
    }

    // Keep running with the stale ordering...
    let stale = live.materialize();
    println!(
        "\nwithout maintenance (stale hot set) : OMEGA speedup {:.2}x",
        measure(&stale)
    );
    // ...or take a maintenance window: re-run the §VI reordering.
    let (fresh, _) = live.snapshot();
    println!(
        "after re-running the §VI reordering : OMEGA speedup {:.2}x (hot-set coverage back to {:.1}%)",
        measure(&fresh),
        100.0 * live.hot_set_coverage(),
    );
    println!(
        "(the paper defers dynamic graphs to future work; this is the §IX sketch made concrete:\n\
         track drift incrementally, re-identify the hot 20% when it exceeds a threshold.)"
    );
    Ok(())
}
