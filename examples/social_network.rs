//! Social-network analytics scenario: influence ranking, reachability, and
//! community structure over a power-law friendship graph — the workload mix
//! the paper's introduction motivates (web ranking, social analysis).
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use omega_core::config::SystemConfig;
use omega_core::runner::run_pair;
use omega_graph::generators::{rmat_undirected, RmatParams};
use omega_graph::reorder;
use omega_ligra::algorithms::{self, Algo};
use omega_ligra::trace::NullTracer;
use omega_ligra::{Ctx, ExecConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic friendship network (undirected, heavy-tailed degrees).
    let g = rmat_undirected(12, 10, RmatParams::default(), 7)?;
    let (g, _) = reorder::canonical_hot_order(&g);
    println!(
        "social graph: {} members, {} friendships",
        g.num_vertices(),
        g.num_edges()
    );

    // -- Functional analytics (plain library use, no simulation) --------
    let mut tracer = NullTracer;
    let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
    let ranks = algorithms::pagerank(&g, &mut ctx, 10);
    let mut top: Vec<usize> = (0..ranks.len()).collect();
    top.sort_unstable_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("\nmost influential members (10 PageRank iterations):");
    for &v in top.iter().take(5) {
        println!(
            "  member {v:>6}: score {:.5}, {} friends",
            ranks[v],
            g.out_degree(v as u32)
        );
    }

    let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
    let labels = algorithms::cc(&g, &mut ctx);
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let mut communities: Vec<usize> = sizes.values().copied().collect();
    communities.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\ncommunities: {} total; largest {} members ({:.0}% of the network)",
        communities.len(),
        communities[0],
        100.0 * communities[0] as f64 / labels.len() as f64
    );

    let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
    let triangles = algorithms::tc(&g, &mut ctx);
    println!("triangles (mutual-friend triples): {triangles}");

    // -- Architectural comparison: what OMEGA buys this workload --------
    println!("\nsimulated on a 16-core CMP (baseline vs OMEGA):");
    for algo in [
        Algo::PageRank { iters: 1 },
        Algo::Bfs { root: 0 }.with_default_root(&g),
        Algo::Cc,
    ] {
        let (base, fast) = run_pair(
            &g,
            algo,
            &SystemConfig::mini_baseline(),
            &SystemConfig::mini_omega(),
        );
        println!(
            "  {:<9} {:>11} -> {:>11} cycles  ({:.2}x; {:.0}% of vtxProp updates on PISCs)",
            algo.name(),
            base.total_cycles,
            fast.total_cycles,
            fast.speedup_over(&base),
            100.0 * fast.mem.scratchpad.pisc_ops as f64 / fast.mem.atomics.executed.max(1) as f64,
        );
    }
    Ok(())
}
