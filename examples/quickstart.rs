//! Quickstart: run one graph algorithm on the baseline CMP and on OMEGA,
//! and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use omega_core::config::SystemConfig;
use omega_core::runner::run_pair;
use omega_energy::energy_breakdown;
use omega_graph::generators::{rmat, RmatParams};
use omega_graph::{reorder, stats};
use omega_ligra::algorithms::Algo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a natural (power-law) graph, like a small web crawl.
    let g = rmat(13, 12, RmatParams::default(), 42)?;
    let skew = stats::degree_stats(&g);
    println!(
        "graph: {} vertices, {} edges; top-20% vertices receive {:.0}% of edges (power law: {})",
        g.num_vertices(),
        g.num_edges(),
        100.0 * skew.in_connectivity(0.2),
        skew.follows_power_law(),
    );

    // 2. Reorder into the canonical hot order OMEGA expects (§VI of the
    //    paper: linear-time n-th-element selection of the top 20%).
    let (g, _perm) = reorder::canonical_hot_order(&g);

    // 3. Run one PageRank iteration on both machines. The functional
    //    result is identical; only the timing differs.
    let baseline = SystemConfig::mini_baseline();
    let omega = SystemConfig::mini_omega();
    let (base, fast) = run_pair(&g, Algo::PageRank { iters: 1 }, &baseline, &omega);
    assert_eq!(
        base.checksum, fast.checksum,
        "the architecture must not change results"
    );

    println!("\nbaseline CMP : {:>12} cycles", base.total_cycles);
    println!("OMEGA        : {:>12} cycles", fast.total_cycles);
    println!("speedup      : {:.2}x", fast.speedup_over(&base));

    // 4. Where did the time go?
    println!(
        "\nbaseline: LLC hit {:.0}%, {:.1} MB on-chip traffic, memory-bound {:.0}%",
        100.0 * base.mem.l2.hit_rate(),
        base.mem.noc.bytes as f64 / 1e6,
        100.0 * base.engine.memory_bound_fraction(),
    );
    println!(
        "OMEGA   : last-level hit {:.0}%, {:.1} MB traffic, {} atomics offloaded to PISCs, {} served locally",
        100.0 * fast.mem.last_level_hit_rate(),
        fast.mem.noc.bytes as f64 / 1e6,
        fast.mem.scratchpad.pisc_ops,
        fast.mem.scratchpad.local_accesses,
    );

    // 5. Energy (Fig. 21 of the paper).
    let eb = energy_breakdown(&base, &baseline);
    let eo = energy_breakdown(&fast, &omega);
    println!(
        "\nmemory-system energy: baseline {:.3} mJ, OMEGA {:.3} mJ ({:.2}x saving)",
        eb.total_mj(),
        eo.total_mj(),
        eb.total_mj() / eo.total_mj(),
    );
    Ok(())
}
