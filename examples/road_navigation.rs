//! Road-network navigation scenario: shortest-path routing over a weighted,
//! *non*-power-law graph (the paper's roadNet/Western-USA class) — showing
//! both the library's weighted-SSSP API and the paper's finding that OMEGA's
//! benefit is limited when no degree skew exists (Fig. 18).
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use omega_core::config::SystemConfig;
use omega_core::runner::run_pair;
use omega_graph::generators::grid_road;
use omega_graph::{reorder, stats};
use omega_ligra::algorithms::{self, Algo};
use omega_ligra::trace::NullTracer;
use omega_ligra::{Ctx, ExecConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic road network: 96×96 grid of intersections, road segment
    // lengths 1..500 m, a few diagonal shortcuts.
    let g = grid_road(96, 96, 0.08, 500, 3)?;
    let skew = stats::degree_stats(&g);
    println!(
        "road network: {} intersections, {} road segments; top-20% connectivity {:.0}% (no power law)",
        g.num_vertices(),
        g.num_edges(),
        100.0 * skew.in_connectivity(0.2),
    );
    let (g, perm) = reorder::canonical_hot_order(&g);

    // Route from one corner of the map.
    let depot = perm.map(0);
    let mut tracer = NullTracer;
    let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
    let dist = algorithms::sssp(&g, &mut ctx, depot);
    let reachable = dist.iter().filter(|&&d| d != algorithms::UNREACHED).count();
    let furthest = dist
        .iter()
        .filter(|&&d| d != algorithms::UNREACHED)
        .max()
        .unwrap();
    println!(
        "\nrouting from the depot: {} of {} intersections reachable; furthest is {} m away",
        reachable,
        g.num_vertices(),
        furthest
    );

    // Estimated service radius via multi-source BFS sampling.
    let mut ctx = Ctx::new(ExecConfig::default(), &mut tracer);
    let hops = algorithms::radii(&g, &mut ctx, 16);
    println!("estimated network radius: {hops} hops");

    // The architectural story: flat degree distributions give the
    // scratchpads nothing special to hold (paper Fig. 18: USA max 1.15x).
    println!("\nsimulated on a 16-core CMP (baseline vs OMEGA):");
    for algo in [Algo::Sssp { root: depot }, Algo::PageRank { iters: 1 }] {
        let (base, fast) = run_pair(
            &g,
            algo,
            &SystemConfig::mini_baseline(),
            &SystemConfig::mini_omega(),
        );
        println!(
            "  {:<9} {:.2}x speedup ({:.0}% of vertices scratchpad-resident, but accesses are uniform)",
            algo.name(),
            fast.speedup_over(&base),
            100.0 * fast.hot_count as f64 / fast.n_vertices as f64,
        );
    }
    println!("\ncompare with the power-law results of `cargo run --release --example quickstart`.");
    Ok(())
}
