//! Capacity-planning scenario: how much scratchpad does a workload need?
//!
//! Sweeps the per-core scratchpad size for a natural graph (the paper's
//! Fig. 19 sensitivity study) and cross-checks the detailed simulation
//! against the analytic model used for very large graphs (Fig. 20).
//!
//! ```text
//! cargo run --release --example scratchpad_sizing
//! ```

use omega_core::analytic::{estimate, WorkloadProfile};
use omega_core::config::SystemConfig;
use omega_core::runner::{run, RunConfig};
use omega_graph::generators::{rmat, RmatParams};
use omega_graph::reorder;
use omega_ligra::algorithms::Algo;
use omega_sim::telemetry::TelemetryConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = rmat(13, 12, RmatParams::default(), 99)?;
    let (g, _) = reorder::canonical_hot_order(&g);
    let algo = Algo::PageRank { iters: 1 };
    println!(
        "sizing scratchpads for PageRank on a {}-vertex natural graph\n",
        g.num_vertices()
    );

    let baseline = run(&g, algo, &RunConfig::new(SystemConfig::mini_baseline()));
    println!("baseline CMP: {} cycles\n", baseline.total_cycles);
    println!(
        "{:>10}  {:>12}  {:>10}  {:>9}  {:>10}",
        "SP/core", "resident %", "speedup", "analytic", "PISC ops"
    );

    let profile = WorkloadProfile::from_graph(&g, algo);
    let analytic_base = estimate(&profile, &SystemConfig::mini_baseline());
    for kb in [1u64, 2, 4, 8, 16] {
        let system = SystemConfig::mini_omega().with_scratchpad_bytes(kb * 1024);
        let r = run(&g, algo, &RunConfig::new(system));
        let a = estimate(&profile, &system);
        println!(
            "{:>8}KB  {:>11.1}%  {:>9.2}x  {:>8.2}x  {:>10}",
            kb,
            100.0 * r.hot_count as f64 / r.n_vertices as f64,
            baseline.total_cycles as f64 / r.total_cycles as f64,
            analytic_base.cycles / a.cycles,
            r.mem.scratchpad.pisc_ops,
        );
    }

    println!(
        "\nreading the table: once the resident fraction covers the hot 20% of vertices,\n\
         extra scratchpad capacity buys little — the paper's key scaling observation (§VII)."
    );

    // Utilisation over time on the standard OMEGA machine: sixteen windows
    // of cycle-sampled telemetry show *when* the bandwidth and the PISCs
    // are busy, not just how much in aggregate.
    let mut system = SystemConfig::mini_omega();
    system.machine.telemetry = TelemetryConfig::windowed((baseline.total_cycles / 16).max(1));
    let r = run(&g, algo, &RunConfig::new(system));
    let t = r.telemetry.expect("telemetry was enabled");
    println!(
        "\nutilisation over time (standard OMEGA, {}-cycle windows):\n",
        t.window_cycles
    );
    println!(
        "{:>10}  {:>10}  {:>9}  {:>10}  {:>10}",
        "cycle", "DRAM util", "LLC hit %", "NoC bytes", "PISC busy"
    );
    let channels = system.machine.dram.channels;
    let mut prev_end = 0;
    for w in &t.windows {
        let len = w.end.saturating_sub(prev_end);
        prev_end = w.end;
        let d = &w.delta;
        println!(
            "{:>10}  {:>9.1}%  {:>8.1}%  {:>10}  {:>10}",
            w.end,
            100.0 * d.dram.utilization(len, channels),
            100.0 * d.last_level_hit_rate(),
            d.noc.bytes,
            d.scratchpad.pisc_busy_cycles,
        );
    }
    Ok(())
}
